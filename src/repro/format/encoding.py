"""Value encodings for column chunks.

Implements the encodings the paper's Parquet files rely on (Section 2):

* **plain** — fixed-width little-endian values; strings are 4-byte
  length-prefixed UTF-8.
* **bit-packing** — non-negative integer codes packed at the minimal bit
  width (LSB-first within each value, values concatenated).
* **RLE** — run-length encoding of integer codes as (varint run length,
  varint value) pairs.
* **dictionary** — unique values in first-appearance order plus an index
  stream encoded with whichever of RLE/bit-packing is smaller (Parquet's
  hybrid behaviour, simplified to a per-page choice).

All functions operate on numpy arrays and return ``bytes``.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.format.schema import ColumnType

PLAIN = "plain"
DICTIONARY = "dictionary"
RLE = "rle"
BITPACK = "bitpack"


# ---------------------------------------------------------------------------
# Plain encoding
# ---------------------------------------------------------------------------


def encode_plain(type_: ColumnType, values: np.ndarray) -> bytes:
    """Encode values in plain form (the uncompressed representation)."""
    if type_ is ColumnType.STRING:
        parts = []
        for v in values:
            raw = v.encode("utf-8")
            parts.append(struct.pack("<I", len(raw)))
            parts.append(raw)
        return b"".join(parts)
    dtype = type_.numpy_dtype
    if type_ is ColumnType.BOOL:
        return np.asarray(values, dtype=np.uint8).tobytes()
    return np.ascontiguousarray(values, dtype=np.dtype(dtype).newbyteorder("<")).tobytes()


def decode_plain(type_: ColumnType, data: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`encode_plain`."""
    if type_ is ColumnType.STRING:
        out = np.empty(count, dtype=object)
        pos = 0
        for i in range(count):
            (length,) = struct.unpack_from("<I", data, pos)
            pos += 4
            out[i] = data[pos : pos + length].decode("utf-8")
            pos += length
        return out
    if type_ is ColumnType.BOOL:
        return np.frombuffer(data, dtype=np.uint8, count=count).astype(np.bool_)
    dtype = np.dtype(type_.numpy_dtype).newbyteorder("<")
    return np.frombuffer(data, dtype=dtype, count=count).astype(type_.numpy_dtype)


# ---------------------------------------------------------------------------
# Varints (LEB128, unsigned)
# ---------------------------------------------------------------------------


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a ULEB128 varint."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, pos: int) -> tuple[int, int]:
    """Decode one varint at ``pos``; returns ``(value, next_pos)``."""
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


# ---------------------------------------------------------------------------
# Bit-packing
# ---------------------------------------------------------------------------


def bit_width_for(max_value: int) -> int:
    """Minimal bit width needed to represent values in ``[0, max_value]``."""
    if max_value < 0:
        raise ValueError("bit packing requires non-negative values")
    return max(1, int(max_value).bit_length())


def bitpack_encode(codes: np.ndarray, bit_width: int) -> bytes:
    """Pack non-negative integer codes at ``bit_width`` bits per value."""
    if len(codes) == 0:
        return b""
    codes = np.asarray(codes, dtype=np.uint64)
    if codes.max(initial=0) >= (1 << bit_width):
        raise ValueError(f"value exceeds bit width {bit_width}")
    # Expand to a bit matrix (LSB first per value), then pack.
    shifts = np.arange(bit_width, dtype=np.uint64)
    bits = ((codes[:, None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(bits.reshape(-1), bitorder="little").tobytes()


def bitpack_decode(data: bytes, bit_width: int, count: int) -> np.ndarray:
    """Inverse of :func:`bitpack_encode`; returns int64 codes."""
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    raw = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(raw, bitorder="little")[: count * bit_width]
    bits = bits.reshape(count, bit_width).astype(np.int64)
    weights = (1 << np.arange(bit_width, dtype=np.int64))
    return bits @ weights


# ---------------------------------------------------------------------------
# Run-length encoding
# ---------------------------------------------------------------------------


def rle_encode(codes: np.ndarray) -> bytes:
    """Run-length encode integer codes as (varint length, varint value) pairs."""
    codes = np.asarray(codes, dtype=np.int64)
    if len(codes) == 0:
        return b""
    if codes.min() < 0:
        raise ValueError("RLE requires non-negative codes")
    boundaries = np.flatnonzero(np.diff(codes)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(codes)]))
    out = bytearray()
    for s, e in zip(starts, ends):
        out += encode_varint(int(e - s))
        out += encode_varint(int(codes[s]))
    return bytes(out)


def rle_decode(data: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`rle_encode`."""
    out = np.empty(count, dtype=np.int64)
    pos = 0
    filled = 0
    while filled < count:
        run, pos = decode_varint(data, pos)
        value, pos = decode_varint(data, pos)
        out[filled : filled + run] = value
        filled += run
    if filled != count:
        raise ValueError(f"RLE stream decoded {filled} values, expected {count}")
    return out


# ---------------------------------------------------------------------------
# Index streams (hybrid RLE / bit-pack, chosen per stream)
# ---------------------------------------------------------------------------

_INDEX_RLE = 0
_INDEX_BITPACK = 1


def encode_index_stream(codes: np.ndarray, bit_width: int) -> bytes:
    """Encode dictionary indices, choosing the smaller of RLE and bit-packing.

    The one-byte header records which variant was used.
    """
    rle = rle_encode(codes)
    packed = bitpack_encode(codes, bit_width)
    if len(rle) <= len(packed):
        return bytes([_INDEX_RLE]) + rle
    return bytes([_INDEX_BITPACK]) + packed


def decode_index_stream(data: bytes, bit_width: int, count: int) -> np.ndarray:
    """Inverse of :func:`encode_index_stream`."""
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    kind = data[0]
    body = data[1:]
    if kind == _INDEX_RLE:
        return rle_decode(body, count)
    if kind == _INDEX_BITPACK:
        return bitpack_decode(body, bit_width, count)
    raise ValueError(f"unknown index stream kind {kind}")


# ---------------------------------------------------------------------------
# Dictionary building
# ---------------------------------------------------------------------------


def build_dictionary(type_: ColumnType, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(unique_values, codes)`` with uniques in first-appearance order."""
    if type_ is ColumnType.STRING:
        mapping: dict[str, int] = {}
        codes = np.empty(len(values), dtype=np.int64)
        uniques: list[str] = []
        for i, v in enumerate(values):
            code = mapping.get(v)
            if code is None:
                code = len(uniques)
                mapping[v] = code
                uniques.append(v)
            codes[i] = code
        uniq_arr = np.empty(len(uniques), dtype=object)
        for i, v in enumerate(uniques):
            uniq_arr[i] = v
        return uniq_arr, codes
    uniques, first_idx, codes = np.unique(values, return_index=True, return_inverse=True)
    # np.unique sorts; remap to first-appearance order like Parquet writers do.
    order = np.argsort(first_idx)
    remap = np.empty(len(uniques), dtype=np.int64)
    remap[order] = np.arange(len(uniques))
    return uniques[order], remap[codes]


def should_use_dictionary(num_values: int, num_unique: int) -> bool:
    """Heuristic mirroring Parquet writers: dictionary pays off when the
    column repeats values; fall back to plain for near-unique columns."""
    if num_values == 0:
        return False
    return num_unique <= max(1, num_values // 2) and num_unique < (1 << 20)
