"""Value encodings for column chunks.

Implements the encodings the paper's Parquet files rely on (Section 2):

* **plain** — fixed-width little-endian values; strings are 4-byte
  length-prefixed UTF-8.
* **bit-packing** — non-negative integer codes packed at the minimal bit
  width (LSB-first within each value, values concatenated).
* **RLE** — run-length encoding of integer codes as (varint run length,
  varint value) pairs.
* **dictionary** — unique values in first-appearance order plus an index
  stream encoded with whichever of RLE/bit-packing is smaller (Parquet's
  hybrid behaviour, simplified to a per-page choice).

All functions operate on numpy arrays and return ``bytes``.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.format.schema import ColumnType

PLAIN = "plain"
DICTIONARY = "dictionary"
RLE = "rle"
BITPACK = "bitpack"


# ---------------------------------------------------------------------------
# Plain encoding
# ---------------------------------------------------------------------------


def _encode_plain_strings(values: np.ndarray) -> bytes:
    """Vectorized length-prefixed UTF-8 string encoding.

    One ``"\\x00".join`` + ``encode`` pass yields the payload with NUL
    separators marking the string boundaries, so the per-string byte
    lengths fall out of one vectorized separator scan — no per-value
    ``len``/``encode`` calls.  Prefixes and payload are then scattered
    through a run-length boolean mask.  Strings containing NUL bytes
    (which would alias the separators) take the scalar path.
    """
    n = len(values)
    if n == 0:
        return b""
    sep_blob = "\x00".join(values).encode("utf-8")
    sbarr = np.frombuffer(sep_blob, dtype=np.uint8)
    seps = np.flatnonzero(sbarr == 0)
    if len(seps) != n - 1:
        from repro.format import _reference

        return _reference.encode_plain_strings(values)
    lens = np.diff(np.concatenate(([-1], seps, [len(sbarr)]))) - 1
    total = 4 * n + len(sbarr) - (n - 1)
    out = np.empty(total, dtype=np.uint8)
    counts = np.empty(2 * n, dtype=np.int64)
    counts[0::2] = 4
    counts[1::2] = lens
    flags = np.zeros(2 * n, dtype=bool)
    flags[1::2] = True
    payload_mask = np.repeat(flags, counts)
    out[~payload_mask] = lens.astype("<u4").view(np.uint8)
    out[payload_mask] = sbarr[sbarr != 0] if n > 1 else sbarr
    return out.tobytes()


def _chain_string_starts(arr: np.ndarray, count: int):
    """Record-start offsets of ``count`` length-prefixed strings, vectorized.

    The length prefix of a string shorter than 256 bytes is
    ``[L, 0, 0, 0]``, so every record start is followed by three zero
    bytes.  Candidate starts are found with one vectorized compare, the
    successor of each candidate (``start + 4 + length``) is mapped back
    into the candidate list, and the true record chain is enumerated
    from offset 0 by pointer doubling — O(log n) gather passes instead
    of a serial byte walk.  Extra candidates (payload zeros) are
    harmless; a candidate miss (a ≥256-byte string, truncation) returns
    None and the caller falls back to the scalar walk, so this is an
    exact fast path, not a heuristic.
    """
    total = arr.size
    if total < 4 or arr[1] or arr[2] or arr[3]:
        return None
    z = arr == 0
    cand = np.flatnonzero(z[1 : total - 2] & z[2 : total - 1] & z[3:total])
    m = cand.size
    if m < count or m > 4 * count + 64:
        return None
    lens = arr[cand].astype(np.int64)
    succ = cand + 4 + lens
    nxt = np.searchsorted(cand, succ)
    ok = nxt < m
    ok &= cand[np.where(ok, nxt, 0)] == succ
    jump = np.concatenate((np.where(ok, nxt, m), [m]))
    idxs = np.empty(count, dtype=np.int64)
    idxs[0] = 0
    filled = 1
    step = jump
    while filled < count:
        take = min(filled, count - filled)
        idxs[filled : filled + take] = step[idxs[:take]]
        filled += take
        if filled < count:
            step = step[step]
    if int(idxs.max()) >= m:
        return None
    starts = cand[idxs]
    used = int(starts[-1] + 4 + lens[idxs[-1]])
    if used > total:
        return None
    return starts, lens[idxs], used


def _decode_plain_strings_scalar(buf, count: int) -> np.ndarray:
    """Serial-walk fallback for streams the vectorized path declines
    (strings ≥256 bytes, NUL-byte payloads, corruption)."""
    out = np.empty(count, dtype=object)
    pos = 0
    for i in range(count):
        (length,) = struct.unpack_from("<I", buf, pos)
        pos += 4
        out[i] = bytes(buf[pos : pos + length]).decode("utf-8")
        pos += length
    return out


def _decode_plain_strings(data, count: int) -> np.ndarray:
    """Vectorized inverse of :func:`_encode_plain_strings`.

    Record starts come from :func:`_chain_string_starts`; the prefixes
    are then masked out, NUL separators are scattered between the
    payloads, and the whole buffer is decoded once and ``str.split`` on
    the separator — two C passes instead of ``count`` per-string
    decodes.  Accepts any byte buffer (bytes, memoryview, uint8 view).
    """
    out = np.empty(count, dtype=object)
    if count == 0:
        return out
    arr = np.frombuffer(data, dtype=np.uint8)
    chained = _chain_string_starts(arr, count)
    if chained is None:
        return _decode_plain_strings_scalar(
            data if isinstance(data, (bytes, bytearray)) else memoryview(data), count
        )
    starts, lens, used = chained
    payload_mask = np.ones(used, dtype=bool)
    payload_mask[(starts[:, None] + np.arange(4)).reshape(-1)] = False
    payload = arr[:used][payload_mask]
    if not payload.all():  # NUL bytes in payload would alias the separators
        return _decode_plain_strings_scalar(
            data if isinstance(data, (bytes, bytearray)) else memoryview(data), count
        )
    spaced = np.zeros(len(payload) + count - 1, dtype=np.uint8)
    spaced_mask = np.ones(len(spaced), dtype=bool)
    spaced_mask[np.cumsum(lens[:-1] + 1) - 1] = False  # separator slots
    spaced[spaced_mask] = payload
    parts = spaced.tobytes().decode("utf-8").split("\x00")
    out[:] = parts
    return out


def encode_plain(type_: ColumnType, values: np.ndarray) -> bytes:
    """Encode values in plain form (the uncompressed representation)."""
    if type_ is ColumnType.STRING:
        return _encode_plain_strings(values)
    dtype = type_.numpy_dtype
    if type_ is ColumnType.BOOL:
        return np.asarray(values, dtype=np.uint8).tobytes()
    return np.ascontiguousarray(values, dtype=np.dtype(dtype).newbyteorder("<")).tobytes()


def decode_plain(type_: ColumnType, data: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`encode_plain`.  ``data`` may be any C-contiguous
    buffer (``bytes``, ``memoryview``, uint8 array): the store's zero-copy
    read path passes block views straight through."""
    if type_ is ColumnType.STRING:
        return _decode_plain_strings(data, count)
    if type_ is ColumnType.BOOL:
        return np.frombuffer(data, dtype=np.uint8, count=count).astype(np.bool_)
    dtype = np.dtype(type_.numpy_dtype).newbyteorder("<")
    return np.frombuffer(data, dtype=dtype, count=count).astype(type_.numpy_dtype)


# ---------------------------------------------------------------------------
# Varints (LEB128, unsigned)
# ---------------------------------------------------------------------------


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a ULEB128 varint."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, pos: int) -> tuple[int, int]:
    """Decode one varint at ``pos``; returns ``(value, next_pos)``."""
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


# ---------------------------------------------------------------------------
# Bit-packing
# ---------------------------------------------------------------------------


def bit_width_for(max_value: int) -> int:
    """Minimal bit width needed to represent values in ``[0, max_value]``."""
    if max_value < 0:
        raise ValueError("bit packing requires non-negative values")
    return max(1, int(max_value).bit_length())


def bitpack_encode(codes: np.ndarray, bit_width: int) -> bytes:
    """Pack non-negative integer codes at ``bit_width`` bits per value."""
    if len(codes) == 0:
        return b""
    codes = np.asarray(codes, dtype=np.uint64)
    if codes.max(initial=0) >= (1 << bit_width):
        raise ValueError(f"value exceeds bit width {bit_width}")
    # Expand to a bit matrix (LSB first per value), then pack.
    shifts = np.arange(bit_width, dtype=np.uint64)
    bits = ((codes[:, None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(bits.reshape(-1), bitorder="little").tobytes()


def bitpack_decode(data: bytes, bit_width: int, count: int) -> np.ndarray:
    """Inverse of :func:`bitpack_encode`; returns int64 codes."""
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    raw = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(raw, bitorder="little")[: count * bit_width]
    bits = bits.reshape(count, bit_width).astype(np.int64)
    weights = (1 << np.arange(bit_width, dtype=np.int64))
    return bits @ weights


# ---------------------------------------------------------------------------
# Run-length encoding
# ---------------------------------------------------------------------------


def encode_varint_array(values: np.ndarray) -> np.ndarray:
    """ULEB128-encode a whole array of non-negative ints in one pass.

    Byte counts come from threshold comparisons, byte positions from a
    cumsum, and every output byte is computed by one vectorized
    shift/mask over a ``repeat``-expanded value array.  Byte-identical
    to concatenating :func:`encode_varint` of each value.
    """
    values = values.astype(np.uint64)
    n = len(values)
    if n == 0:
        return np.zeros(0, dtype=np.uint8)
    max_bits = int(values.max()).bit_length()
    if max_bits <= 7:
        # Common case (small run lengths and dictionary codes): every
        # varint is a single byte, so the encoding is a plain narrowing.
        return values.astype(np.uint8)
    nbytes = np.ones(n, dtype=np.int64)
    for shift in range(7, max_bits, 7):
        nbytes += values >= (np.uint64(1) << np.uint64(shift))
    offsets = np.concatenate(([0], np.cumsum(nbytes)))
    total = int(offsets[-1])
    owner = np.repeat(np.arange(n, dtype=np.int64), nbytes)
    rank = (np.arange(total, dtype=np.int64) - offsets[owner]).astype(np.uint64)
    out = ((values[owner] >> (np.uint64(7) * rank)) & np.uint64(0x7F)).astype(np.uint8)
    out[rank < (nbytes[owner] - 1).astype(np.uint64)] |= 0x80
    return out


def decode_varint_stream(data: np.ndarray) -> np.ndarray:
    """Decode every complete ULEB128 varint in ``data`` (a uint8 array).

    Varint boundaries are the bytes with the continuation bit clear;
    each group's bytes are combined with one shifted-accumulate via
    ``np.add.reduceat``.  Trailing bytes after the last terminator are
    ignored (an incomplete varint), matching the scalar parser's
    stop-on-demand behaviour.
    """
    if data.size == 0:
        return np.zeros(0, dtype=np.int64)
    if int(data.max()) < 0x80:
        # No continuation bits anywhere: the stream is its own decoding.
        return data.astype(np.int64)
    ends = np.flatnonzero(data < 0x80)
    if len(ends) == 0:
        return np.zeros(0, dtype=np.int64)
    used = int(ends[-1]) + 1
    starts = np.empty(len(ends), dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    if int((ends - starts).max()) >= 10:
        raise ValueError("varint too long")
    rank = np.arange(used, dtype=np.int64) - np.repeat(starts, ends - starts + 1)
    contrib = (data[:used].astype(np.int64) & 0x7F) << (7 * rank)
    return np.add.reduceat(contrib, starts)


def rle_encode(codes: np.ndarray) -> bytes:
    """Run-length encode integer codes as (varint length, varint value) pairs.

    Runs are found with one ``np.diff`` boundary scan and both varint
    columns are emitted by a single batched varint pass — no per-run
    Python loop.
    """
    codes = np.asarray(codes, dtype=np.int64)
    if len(codes) == 0:
        return b""
    if codes.min() < 0:
        raise ValueError("RLE requires non-negative codes")
    boundaries = np.flatnonzero(np.diff(codes)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(codes)]))
    pairs = np.empty(2 * len(starts), dtype=np.int64)
    pairs[0::2] = ends - starts
    pairs[1::2] = codes[starts]
    return encode_varint_array(pairs).tobytes()


def rle_decode(data, count: int) -> np.ndarray:
    """Inverse of :func:`rle_encode`; accepts any byte buffer."""
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    arr = np.frombuffer(data, dtype=np.uint8)
    pairs = decode_varint_stream(arr)
    runs = pairs[0::2]
    values = pairs[1 : 2 * len(runs) : 2]
    if len(values) < len(runs):
        runs = runs[:-1]  # trailing run length without its value
    total = np.cumsum(runs)
    stop = int(np.searchsorted(total, count, side="left"))
    if stop >= len(total):
        filled = int(total[-1]) if len(total) else 0
        raise ValueError(f"RLE stream decoded {filled} values, expected {count}")
    filled = int(total[stop])
    if filled != count:
        raise ValueError(f"RLE stream decoded {filled} values, expected {count}")
    return np.repeat(values[: stop + 1], runs[: stop + 1])


# ---------------------------------------------------------------------------
# Index streams (hybrid RLE / bit-pack, chosen per stream)
# ---------------------------------------------------------------------------

_INDEX_RLE = 0
_INDEX_BITPACK = 1


def encode_index_stream(codes: np.ndarray, bit_width: int) -> bytes:
    """Encode dictionary indices, choosing the smaller of RLE and bit-packing.

    The one-byte header records which variant was used.
    """
    rle = rle_encode(codes)
    packed = bitpack_encode(codes, bit_width)
    if len(rle) <= len(packed):
        return bytes([_INDEX_RLE]) + rle
    return bytes([_INDEX_BITPACK]) + packed


def decode_index_stream(data: bytes, bit_width: int, count: int) -> np.ndarray:
    """Inverse of :func:`encode_index_stream`."""
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    kind = data[0]
    body = data[1:]
    if kind == _INDEX_RLE:
        return rle_decode(body, count)
    if kind == _INDEX_BITPACK:
        return bitpack_decode(body, bit_width, count)
    raise ValueError(f"unknown index stream kind {kind}")


# ---------------------------------------------------------------------------
# Dictionary building
# ---------------------------------------------------------------------------


def build_dictionary(type_: ColumnType, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(unique_values, codes)`` with uniques in first-appearance order.

    The string path intentionally stays a hash-map loop: a single-pass
    C dict probe is O(n) and beats every sort-based numpy formulation
    (``np.unique`` over fixed-width 'U' arrays) on the short, repetitive
    strings dictionary encoding targets.  The downstream index-stream
    emission is what's vectorized (:func:`rle_encode` / bit-packing).
    """
    if type_ is ColumnType.STRING:
        mapping: dict[str, int] = {}
        codes = np.empty(len(values), dtype=np.int64)
        uniques: list[str] = []
        for i, v in enumerate(values):
            code = mapping.get(v)
            if code is None:
                code = len(uniques)
                mapping[v] = code
                uniques.append(v)
            codes[i] = code
        uniq_arr = np.empty(len(uniques), dtype=object)
        for i, v in enumerate(uniques):
            uniq_arr[i] = v
        return uniq_arr, codes
    uniques, first_idx, codes = np.unique(values, return_index=True, return_inverse=True)
    # np.unique sorts; remap to first-appearance order like Parquet writers do.
    order = np.argsort(first_idx)
    remap = np.empty(len(uniques), dtype=np.int64)
    remap[order] = np.arange(len(uniques))
    return uniques[order], remap[codes]


def should_use_dictionary(num_values: int, num_unique: int) -> bool:
    """Heuristic mirroring Parquet writers: dictionary pays off when the
    column repeats values; fall back to plain for near-unique columns."""
    if num_values == 0:
        return False
    return num_unique <= max(1, num_values // 2) and num_unique < (1 << 20)
