"""Logical schema for the PAX columnar format.

The format supports the column types needed by the paper's datasets
(TPC-H lineitem, NYC taxi, recipeNLG, UK property prices): 64-bit integers,
doubles, dates (days since epoch), booleans and UTF-8 strings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class ColumnType(enum.Enum):
    """Physical/logical type of a column."""

    INT64 = "int64"
    DOUBLE = "double"
    DATE = "date"  # stored as int32 days since 1970-01-01
    BOOL = "bool"
    STRING = "string"

    @property
    def numpy_dtype(self) -> np.dtype | None:
        """The numpy dtype backing this type, or ``None`` for strings."""
        mapping = {
            ColumnType.INT64: np.dtype(np.int64),
            ColumnType.DOUBLE: np.dtype(np.float64),
            ColumnType.DATE: np.dtype(np.int32),
            ColumnType.BOOL: np.dtype(np.bool_),
        }
        return mapping.get(self)

    @property
    def fixed_width(self) -> int | None:
        """Plain-encoded width in bytes, or ``None`` for variable width."""
        widths = {
            ColumnType.INT64: 8,
            ColumnType.DOUBLE: 8,
            ColumnType.DATE: 4,
            ColumnType.BOOL: 1,
        }
        return widths.get(self)


@dataclass(frozen=True)
class Field:
    """One named, typed column in a schema."""

    name: str
    type: ColumnType

    def to_dict(self) -> dict:
        return {"name": self.name, "type": self.type.value}

    @staticmethod
    def from_dict(d: dict) -> "Field":
        return Field(name=d["name"], type=ColumnType(d["type"]))


class Schema:
    """An ordered collection of fields with by-name lookup."""

    def __init__(self, fields: list[Field]) -> None:
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in schema: {names}")
        self.fields = list(fields)
        self._index = {f.name: i for i, f in enumerate(fields)}

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def field(self, name: str) -> Field:
        """Look up a field by name; raises ``KeyError`` for unknown names."""
        try:
            return self.fields[self._index[name]]
        except KeyError:
            raise KeyError(f"no column named {name!r}; have {self.names()}") from None

    def index_of(self, name: str) -> int:
        """Ordinal position of ``name`` in the schema."""
        if name not in self._index:
            raise KeyError(f"no column named {name!r}; have {self.names()}")
        return self._index[name]

    def names(self) -> list[str]:
        return [f.name for f in self.fields]

    def to_dict(self) -> dict:
        return {"fields": [f.to_dict() for f in self.fields]}

    @staticmethod
    def from_dict(d: dict) -> "Schema":
        return Schema([Field.from_dict(f) for f in d["fields"]])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{f.name}:{f.type.value}" for f in self.fields)
        return f"Schema({cols})"
