"""PAX file reader.

Parses the footer and exposes chunk-granular access: the whole point of the
format (and of Fusion) is that a single column chunk's byte range can be
fetched and decoded independently of the rest of the file.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.format.metadata import MAGIC, ColumnChunkMeta, FileMetadata
from repro.format.pages import decode_column_chunk
from repro.format.schema import Field
from repro.format.table import Column, Table


class FormatError(Exception):
    """Raised when file bytes do not parse as a valid PAX file."""


def read_metadata(data: bytes) -> FileMetadata:
    """Parse the footer of a serialised PAX file."""
    if len(data) < 2 * len(MAGIC) + 4:
        raise FormatError("file too small to be a PAX file")
    if data[: len(MAGIC)] != MAGIC or data[-len(MAGIC) :] != MAGIC:
        raise FormatError("bad magic bytes")
    (footer_len,) = struct.unpack_from("<I", data, len(data) - len(MAGIC) - 4)
    footer_end = len(data) - len(MAGIC) - 4
    footer_start = footer_end - footer_len
    if footer_start < len(MAGIC):
        raise FormatError("footer length exceeds file size")
    return FileMetadata.from_json(data[footer_start:footer_end])


class PaxFile:
    """A parsed PAX file over an in-memory byte buffer."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.metadata = read_metadata(data)

    @property
    def schema(self):
        return self.metadata.schema

    @property
    def num_rows(self) -> int:
        return self.metadata.num_rows

    def chunk_bytes(self, meta: ColumnChunkMeta) -> bytes:
        """The raw byte range of one column chunk."""
        return self.data[meta.offset : meta.end_offset]

    def read_chunk(self, row_group: int, column: str) -> np.ndarray:
        """Decode one column chunk to its value array."""
        meta = self.metadata.chunk(row_group, column)
        return decode_column_chunk(self.chunk_bytes(meta))

    def read_column(self, column: str) -> np.ndarray:
        """Decode a whole column across all row groups."""
        parts = [self.read_chunk(rg.index, column) for rg in self.metadata.row_groups]
        if self.schema.field(column).type.numpy_dtype is None:
            out = np.empty(self.num_rows, dtype=object)
            pos = 0
            for p in parts:
                out[pos : pos + len(p)] = p
                pos += len(p)
            return out
        return np.concatenate(parts) if parts else np.zeros(0)

    def read_table(self, columns: list[str] | None = None) -> Table:
        """Decode the file (or a column subset) back into a Table."""
        names = columns if columns is not None else self.schema.names()
        cols = [
            Column(Field(name, self.schema.field(name).type), self.read_column(name))
            for name in names
        ]
        return Table(cols)


def read_table(data: bytes, columns: list[str] | None = None) -> Table:
    """Convenience one-shot: parse and decode a PAX file."""
    return PaxFile(data).read_table(columns)
