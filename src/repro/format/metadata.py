"""File footer metadata for the PAX format.

Like Parquet, all structural information lives in a footer at the end of
the file: the schema, row group boundaries, and per-column-chunk entries
with byte ranges, encodings, sizes and min/max statistics.  The footer is
serialised as JSON (a debuggable stand-in for Parquet's Thrift footer) and
framed by a length word and magic bytes.

The per-chunk ``plain_size`` / ``size`` pair is what the paper's cost model
consumes: ``compressibility = plain_size / size``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.format.schema import ColumnType, Schema

MAGIC = b"FUS1"


@dataclass(frozen=True)
class ChunkStats:
    """Min/max statistics for one column chunk (Parquet footer stats).

    Values are stored in their natural Python form (int, float or str).
    Used by the coordinator for row-group-level predicate skipping.
    """

    min_value: object
    max_value: object

    def to_dict(self) -> dict:
        return {"min": self.min_value, "max": self.max_value}

    @staticmethod
    def from_dict(d: dict) -> "ChunkStats":
        return ChunkStats(min_value=d["min"], max_value=d["max"])


@dataclass(frozen=True)
class ColumnChunkMeta:
    """Footer entry describing one column chunk."""

    column: str
    type: ColumnType
    row_group: int
    column_index: int
    offset: int  # byte offset of the encoded chunk within the file
    size: int  # encoded (compressed) size in bytes
    plain_size: int  # uncompressed plain-encoded size in bytes
    num_values: int
    encoding: str
    codec: str
    stats: ChunkStats

    @property
    def compressibility(self) -> float:
        """Uncompressed-to-compressed size ratio (>= is more compressible)."""
        if self.size == 0:
            return 1.0
        return self.plain_size / self.size

    @property
    def end_offset(self) -> int:
        return self.offset + self.size

    @property
    def key(self) -> tuple[int, int]:
        """Stable identifier ``(row_group, column_index)`` within a file."""
        return (self.row_group, self.column_index)

    def to_dict(self) -> dict:
        return {
            "column": self.column,
            "type": self.type.value,
            "row_group": self.row_group,
            "column_index": self.column_index,
            "offset": self.offset,
            "size": self.size,
            "plain_size": self.plain_size,
            "num_values": self.num_values,
            "encoding": self.encoding,
            "codec": self.codec,
            "stats": self.stats.to_dict(),
        }

    @staticmethod
    def from_dict(d: dict) -> "ColumnChunkMeta":
        return ColumnChunkMeta(
            column=d["column"],
            type=ColumnType(d["type"]),
            row_group=d["row_group"],
            column_index=d["column_index"],
            offset=d["offset"],
            size=d["size"],
            plain_size=d["plain_size"],
            num_values=d["num_values"],
            encoding=d["encoding"],
            codec=d["codec"],
            stats=ChunkStats.from_dict(d["stats"]),
        )


@dataclass(frozen=True)
class RowGroupMeta:
    """Footer entry describing one row group."""

    index: int
    num_rows: int
    columns: tuple[ColumnChunkMeta, ...]

    def column(self, name: str) -> ColumnChunkMeta:
        for c in self.columns:
            if c.column == name:
                return c
        raise KeyError(f"row group {self.index} has no column {name!r}")

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "num_rows": self.num_rows,
            "columns": [c.to_dict() for c in self.columns],
        }

    @staticmethod
    def from_dict(d: dict) -> "RowGroupMeta":
        return RowGroupMeta(
            index=d["index"],
            num_rows=d["num_rows"],
            columns=tuple(ColumnChunkMeta.from_dict(c) for c in d["columns"]),
        )


@dataclass
class FileMetadata:
    """The parsed footer of a PAX file."""

    schema: Schema
    num_rows: int
    row_groups: list[RowGroupMeta] = field(default_factory=list)

    def all_chunks(self) -> list[ColumnChunkMeta]:
        """Every column chunk in file order (row group major)."""
        return [c for rg in self.row_groups for c in rg.columns]

    def chunks_for_column(self, name: str) -> list[ColumnChunkMeta]:
        return [rg.column(name) for rg in self.row_groups]

    def chunk(self, row_group: int, column: str) -> ColumnChunkMeta:
        return self.row_groups[row_group].column(column)

    @property
    def num_row_groups(self) -> int:
        return len(self.row_groups)

    @property
    def data_size(self) -> int:
        """Total encoded size of all column chunks (excludes footer)."""
        return sum(c.size for c in self.all_chunks())

    def to_json(self) -> bytes:
        doc = {
            "schema": self.schema.to_dict(),
            "num_rows": self.num_rows,
            "row_groups": [rg.to_dict() for rg in self.row_groups],
        }
        return json.dumps(doc, separators=(",", ":")).encode("utf-8")

    @staticmethod
    def from_json(raw: bytes) -> "FileMetadata":
        doc = json.loads(raw.decode("utf-8"))
        return FileMetadata(
            schema=Schema.from_dict(doc["schema"]),
            num_rows=doc["num_rows"],
            row_groups=[RowGroupMeta.from_dict(rg) for rg in doc["row_groups"]],
        )


def compute_stats(type_: ColumnType, values) -> ChunkStats:
    """Compute min/max stats in JSON-safe Python types."""
    if len(values) == 0:
        return ChunkStats(min_value=None, max_value=None)
    if type_ is ColumnType.STRING:
        return ChunkStats(min_value=min(values), max_value=max(values))
    lo, hi = values.min(), values.max()
    if type_ is ColumnType.DOUBLE:
        return ChunkStats(min_value=float(lo), max_value=float(hi))
    if type_ is ColumnType.BOOL:
        return ChunkStats(min_value=bool(lo), max_value=bool(hi))
    return ChunkStats(min_value=int(lo), max_value=int(hi))
