"""Byte-level compression codecs for column chunk pages.

Three codecs are provided:

* ``none`` — identity.
* ``zlib`` — the stdlib DEFLATE implementation (fast C path; the default
  for generated datasets).
* ``snappy`` — a pure-Python LZ77 codec with a Snappy-style tokenised
  format (literal runs + back-references), standing in for the Snappy
  codec the paper's Parquet files use.  Compression ratios land in the
  same regime; the format is self-describing and round-trips exactly.

The snappy compressor is vectorized with numpy: instead of the original
byte-at-a-time hash-chain walk (retained as
:class:`repro.format._reference.ScalarSnappyCodec` for differential
testing), it packs every 4-byte window into a uint32 key, finds each
position's most recent prior occurrence with one stable argsort, groups
positions whose back-reference distance is constant into runs
(``np.flatnonzero(np.diff(...))``), and emits whole runs as match-token
blocks.  Both compressors emit the same self-describing token stream and
each can decompress the other's output; the chosen tokens differ, so
compressed bytes are not identical between the two.

All codecs accept any C-contiguous buffer (``bytes``, ``bytearray``,
``memoryview``, uint8 ``np.ndarray``) so the store's zero-copy read path
can hand them block views without materializing copies.

Codecs are looked up by name via :func:`get_codec` so that file metadata
can record which codec each chunk used.
"""

from __future__ import annotations

import zlib
from typing import Protocol

import numpy as np


class Codec(Protocol):
    """A byte-level compression codec."""

    name: str

    def compress(self, data: bytes) -> bytes: ...

    def decompress(self, data: bytes) -> bytes: ...


class NoneCodec:
    """Identity codec."""

    name = "none"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data


class ZlibCodec:
    """DEFLATE via the stdlib; level 6 balances ratio and speed."""

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        self._level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self._level)

    def decompress(self, data: bytes) -> bytes:
        return zlib.decompress(data)


# -- Snappy-style LZ77 -------------------------------------------------------
#
# Token format (one byte tag):
#   tag < 0x80            literal run of (tag + 1) bytes follows (1..128)
#   tag >= 0x80           match: length = (tag & 0x7F) + _MIN_MATCH,
#                         followed by a 2-byte little-endian offset (1..65535)
# The stream is prefixed with a varint-free 4-byte uncompressed length.

_MIN_MATCH = 4
_MAX_MATCH = 0x7F + _MIN_MATCH
_MAX_LITERAL = 128
_MAX_OFFSET = 0xFFFF
_HASH_BYTES = 4

#: Below this size the argsort machinery costs more than it saves.
_VECTOR_MIN = 64

#: Window-sampling stride for the vectorized compressor: only every
#: N-th 4-byte window is a match anchor, so the argsort runs over n/N
#: keys instead of n.  Repeats shorter than the stride are still found
#: because the verification pass extends anchors byte-exactly.
_ANCHOR_STRIDE = 8


def _emit_literals(out: bytearray, data, start: int, end: int) -> None:
    """Append the literal run ``data[start:end]`` as <=128-byte tokens.

    Long runs are assembled as one ``(runs, 129)`` numpy block — a tag
    column prepended to the reshaped payload — so incompressible inputs
    cost one pass, not one append per 128 bytes.
    """
    length = end - start
    if length <= 0:
        return
    if length >= 4 * _MAX_LITERAL:
        full = length // _MAX_LITERAL
        arr = np.frombuffer(data, dtype=np.uint8, count=full * _MAX_LITERAL, offset=start)
        block = np.empty((full, _MAX_LITERAL + 1), dtype=np.uint8)
        block[:, 0] = _MAX_LITERAL - 1
        block[:, 1:] = arr.reshape(full, _MAX_LITERAL)
        out += block.tobytes()
        start += full * _MAX_LITERAL
    pos = start
    while pos < end:
        run = min(_MAX_LITERAL, end - pos)
        out.append(run - 1)
        out += data[pos : pos + run]
        pos += run


class SnappyLikeCodec:
    """Vectorized LZ77 compressor with a Snappy-style token stream."""

    name = "snappy"

    def compress(self, data: bytes) -> bytes:
        data = memoryview(data).cast("B") if not isinstance(data, bytes) else data
        n = len(data)
        out = bytearray(n.to_bytes(4, "little"))
        if n < _VECTOR_MIN:
            self._compress_small(out, data, n)
            return bytes(out)

        arr = np.frombuffer(data, dtype=np.uint8)
        m = n - _HASH_BYTES + 1  # number of 4-byte windows
        # Sample every _ANCHOR_STRIDE-th window and pack its 4 bytes into
        # one uint32 key.  Exact keys (not hashes): equal key <=> equal
        # 4 bytes, so every anchor pair is a guaranteed 4-byte match.
        anchors = np.arange(0, m, _ANCHOR_STRIDE, dtype=np.int64)
        key = arr[anchors].astype(np.uint32)
        key |= arr[anchors + 1].astype(np.uint32) << np.uint32(8)
        key |= arr[anchors + 2].astype(np.uint32) << np.uint32(16)
        key |= arr[anchors + 3].astype(np.uint32) << np.uint32(24)

        # For each anchor, its most recent prior anchor with the same
        # key: stable-sort anchors by key; equal-key sorted neighbours
        # are exactly those predecessors.  Periodic data with period P
        # resolves to a back-reference distance that is the smallest
        # multiple of P aligned to the stride — still a valid offset.
        order = np.argsort(key, kind="stable")
        same = key[order[1:]] == key[order[:-1]]
        na = len(anchors)
        dist = np.zeros(na, dtype=np.int64)
        tails = order[1:][same]
        dist[tails] = (tails - order[:-1][same]) * _ANCHOR_STRIDE
        dist[dist > _MAX_OFFSET] = 0

        # Group consecutive anchors sharing one distance; each group is
        # one candidate repeated region, verified below with a single
        # vectorized byte comparison at that distance.
        change = np.flatnonzero(np.diff(dist)) + 1
        gstarts = np.concatenate(([0], change))
        gdist = dist[gstarts]
        keep = gdist > 0
        gstarts_l = anchors[gstarts[keep]].tolist()
        gends_l = anchors[np.concatenate((change, [na]))[keep] - 1].tolist()
        gdists_l = gdist[keep].tolist()
        if len(gstarts_l) > max(32, na // 8):
            # Fragmented match structure (e.g. low-cardinality noise):
            # per-group dispatch would dominate and the sampled anchors
            # find poorer matches than the exhaustive walk, so the
            # scalar compressor is both faster and tighter here.
            self._compress_small(out, data, n)
            return bytes(out)

        cur = 0
        for s, e, d in zip(gstarts_l, gends_l, gdists_l):
            # Candidate region: the group's anchors plus the unsampled
            # slack on both sides; clamp so the source stays in bounds.
            lo = max(s - _ANCHOR_STRIDE + 1, d, cur)
            hi = min(e + _HASH_BYTES - 1 + _ANCHOR_STRIDE, n)
            if hi - lo < _MIN_MATCH:
                continue
            eq = arr[lo:hi] == arr[lo - d : hi - d]
            flips = np.flatnonzero(np.diff(eq)) + 1
            bounds = np.empty(len(flips) + 2, dtype=np.int64)
            bounds[0] = 0
            bounds[1:-1] = flips
            bounds[-1] = hi - lo
            first_true = 0 if eq[0] else 1
            for t in range(first_true, len(bounds) - 1, 2):
                ms = lo + int(bounds[t])
                me = lo + int(bounds[t + 1])
                if ms < cur:
                    ms = cur
                rem = me - ms
                if rem < _MIN_MATCH:
                    continue
                _emit_literals(out, data, cur, ms)
                d_lo = d & 0xFF
                d_hi = d >> 8
                full, tail = divmod(rem, _MAX_MATCH)
                if 0 < tail < _MIN_MATCH:
                    # Steal one full token so the tail stays >= _MIN_MATCH.
                    full -= 1
                    tail += _MAX_MATCH
                if full:
                    out += bytes((0x80 | (_MAX_MATCH - _MIN_MATCH), d_lo, d_hi)) * full
                if tail > _MAX_MATCH:
                    out += bytes((0x80 | (tail - _MIN_MATCH - _MIN_MATCH), d_lo, d_hi))
                    tail = _MIN_MATCH
                if tail:
                    out += bytes((0x80 | (tail - _MIN_MATCH), d_lo, d_hi))
                cur = me
        _emit_literals(out, data, cur, n)
        return bytes(out)

    def _compress_small(self, out: bytearray, data, n: int) -> None:
        """Tiny inputs: the scalar walk beats numpy setup overhead."""
        if n < _MIN_MATCH:
            _emit_literals(out, data, 0, n)
            return
        table: dict[bytes, int] = {}
        i = 0
        literal_start = 0
        limit = n - _HASH_BYTES
        while i <= limit:
            chunk = bytes(data[i : i + _HASH_BYTES])
            candidate = table.get(chunk)
            table[chunk] = i
            if candidate is not None and i - candidate <= _MAX_OFFSET:
                length = _HASH_BYTES
                max_len = min(_MAX_MATCH, n - i)
                while length < max_len and data[candidate + length] == data[i + length]:
                    length += 1
                _emit_literals(out, data, literal_start, i)
                out.append(0x80 | (length - _MIN_MATCH))
                out += (i - candidate).to_bytes(2, "little")
                i += length
                literal_start = i
                continue
            i += 1
        _emit_literals(out, data, literal_start, n)

    def compress_greedy(self, data: bytes) -> bytes:
        """Greedy hash-chain tokenisation at every size.

        Emits the exact token stream of the original byte-at-a-time
        compressor.  Small run-structured payloads (filter bitmaps) both
        compress tighter under the exhaustive greedy walk and are too
        small to amortise the vectorized setup, and the simulator charges
        bitmap wire sizes to the network model, so those sizes must not
        drift with vectorized-compressor heuristics.
        """
        data = memoryview(data).cast("B") if not isinstance(data, bytes) else data
        n = len(data)
        out = bytearray(n.to_bytes(4, "little"))
        self._compress_small(out, data, n)
        return bytes(out)

    def decompress(self, data: bytes) -> bytes:
        buf = data if isinstance(data, (bytes, bytearray)) else memoryview(data).cast("B")
        size = len(buf)
        if size < 4:
            raise ValueError("corrupt snappy stream: truncated header")
        n = int.from_bytes(buf[:4], "little")
        out = bytearray(n)  # preallocated; w is the write cursor
        pos = 4
        w = 0
        while w < n:
            if pos >= size:
                raise ValueError("corrupt snappy stream: truncated token")
            tag = buf[pos]
            pos += 1
            if tag < 0x80:
                run = tag + 1
                end = pos + run
                if end > size:
                    raise ValueError("corrupt snappy stream: truncated literal")
                if w + run > n:
                    raise ValueError("corrupt snappy stream: output overrun")
                out[w : w + run] = buf[pos:end]
                pos = end
                w += run
            else:
                length = (tag & 0x7F) + _MIN_MATCH
                if pos + 2 > size:
                    raise ValueError("corrupt snappy stream: truncated match")
                offset = buf[pos] | (buf[pos + 1] << 8)
                if offset == 0 or offset > w:
                    raise ValueError("corrupt snappy stream: bad offset")
                # Coalesce consecutive identical match tokens (the
                # compressor splits long repeated regions into runs of
                # them): any such run extends the output by out[x] =
                # out[x - offset], so it replicates in one pass.
                token = buf[pos - 1 : pos + 2]
                pos += 2
                while buf[pos : pos + 3] == token:
                    length += (tag & 0x7F) + _MIN_MATCH
                    pos += 3
                if w + length > n:
                    raise ValueError("corrupt snappy stream: output overrun")
                start = w - offset
                if offset >= length:
                    out[w : w + length] = out[start : start + length]
                else:
                    # Overlapping copy (run replication): write one
                    # period, then double it — O(log) slice copies
                    # instead of the old byte-at-a-time append.
                    out[w : w + offset] = out[start:w]
                    written = offset
                    while written < length:
                        take = min(written, length - written)
                        out[w + written : w + written + take] = out[w : w + take]
                        written += take
                w += length
        return bytes(out)


class GreedySnappyCodec(SnappyLikeCodec):
    """Snappy-format codec that always uses the greedy tokeniser.

    Same self-describing stream (either codec decompresses the other's
    output); registered separately so size-sensitive callers — the
    bitmap wire path — can pin the greedy token choice.
    """

    name = "snappy-greedy"

    def compress(self, data: bytes) -> bytes:
        return self.compress_greedy(data)


_CODECS: dict[str, Codec] = {
    "none": NoneCodec(),
    "zlib": ZlibCodec(),
    "snappy": SnappyLikeCodec(),
    "snappy-greedy": GreedySnappyCodec(),
}

#: Codec used by the dataset generators (zlib: C-speed stand-in for Snappy).
DEFAULT_CODEC = "zlib"


def get_codec(name: str) -> Codec:
    """Look up a codec by name; raises ``KeyError`` with the known names."""
    try:
        return _CODECS[name]
    except KeyError:
        raise KeyError(f"unknown codec {name!r}; known: {sorted(_CODECS)}") from None


def codec_names() -> list[str]:
    return sorted(_CODECS)
