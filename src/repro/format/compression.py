"""Byte-level compression codecs for column chunk pages.

Three codecs are provided:

* ``none`` — identity.
* ``zlib`` — the stdlib DEFLATE implementation (fast C path; the default
  for generated datasets).
* ``snappy`` — a pure-Python LZ77 codec with a Snappy-style tokenised
  format (literal runs + back-references), standing in for the Snappy
  codec the paper's Parquet files use.  Compression ratios land in the
  same regime; the format is self-describing and round-trips exactly.

Codecs are looked up by name via :func:`get_codec` so that file metadata
can record which codec each chunk used.
"""

from __future__ import annotations

import struct
import zlib
from typing import Protocol


class Codec(Protocol):
    """A byte-level compression codec."""

    name: str

    def compress(self, data: bytes) -> bytes: ...

    def decompress(self, data: bytes) -> bytes: ...


class NoneCodec:
    """Identity codec."""

    name = "none"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data


class ZlibCodec:
    """DEFLATE via the stdlib; level 6 balances ratio and speed."""

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        self._level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self._level)

    def decompress(self, data: bytes) -> bytes:
        return zlib.decompress(data)


# -- Snappy-style LZ77 -------------------------------------------------------
#
# Token format (one byte tag):
#   tag < 0x80            literal run of (tag + 1) bytes follows (1..128)
#   tag >= 0x80           match: length = (tag & 0x7F) + _MIN_MATCH,
#                         followed by a 2-byte little-endian offset (1..65535)
# The stream is prefixed with a varint-free 4-byte uncompressed length.

_MIN_MATCH = 4
_MAX_MATCH = 0x7F + _MIN_MATCH
_MAX_LITERAL = 128
_MAX_OFFSET = 0xFFFF
_HASH_BYTES = 4


class SnappyLikeCodec:
    """Greedy hash-chain LZ77 compressor with a Snappy-style token stream."""

    name = "snappy"

    def compress(self, data: bytes) -> bytes:
        n = len(data)
        out = bytearray(struct.pack("<I", n))
        if n < _MIN_MATCH:
            self._emit_literals(out, data, 0, n)
            return bytes(out)

        table: dict[bytes, int] = {}
        i = 0
        literal_start = 0
        limit = n - _HASH_BYTES
        while i <= limit:
            key = data[i : i + _HASH_BYTES]
            candidate = table.get(key)
            table[key] = i
            if candidate is not None and i - candidate <= _MAX_OFFSET:
                # Extend the match forward.
                length = _HASH_BYTES
                max_len = min(_MAX_MATCH, n - i)
                while length < max_len and data[candidate + length] == data[i + length]:
                    length += 1
                if length >= _MIN_MATCH:
                    self._emit_literals(out, data, literal_start, i)
                    out.append(0x80 | (length - _MIN_MATCH))
                    out += struct.pack("<H", i - candidate)
                    i += length
                    literal_start = i
                    continue
            i += 1
        self._emit_literals(out, data, literal_start, n)
        return bytes(out)

    @staticmethod
    def _emit_literals(out: bytearray, data: bytes, start: int, end: int) -> None:
        pos = start
        while pos < end:
            run = min(_MAX_LITERAL, end - pos)
            out.append(run - 1)
            out += data[pos : pos + run]
            pos += run

    def decompress(self, data: bytes) -> bytes:
        (n,) = struct.unpack_from("<I", data, 0)
        out = bytearray()
        pos = 4
        while len(out) < n:
            tag = data[pos]
            pos += 1
            if tag < 0x80:
                run = tag + 1
                out += data[pos : pos + run]
                pos += run
            else:
                length = (tag & 0x7F) + _MIN_MATCH
                (offset,) = struct.unpack_from("<H", data, pos)
                pos += 2
                if offset == 0 or offset > len(out):
                    raise ValueError("corrupt snappy stream: bad offset")
                start = len(out) - offset
                if offset >= length:
                    out += out[start : start + length]
                else:
                    # Overlapping copy: extend byte-by-byte (run replication).
                    for j in range(length):
                        out.append(out[start + j])
        if len(out) != n:
            raise ValueError(f"corrupt snappy stream: got {len(out)} bytes, expected {n}")
        return bytes(out)


_CODECS: dict[str, Codec] = {
    "none": NoneCodec(),
    "zlib": ZlibCodec(),
    "snappy": SnappyLikeCodec(),
}

#: Codec used by the dataset generators (zlib: C-speed stand-in for Snappy).
DEFAULT_CODEC = "zlib"


def get_codec(name: str) -> Codec:
    """Look up a codec by name; raises ``KeyError`` with the known names."""
    try:
        return _CODECS[name]
    except KeyError:
        raise KeyError(f"unknown codec {name!r}; known: {sorted(_CODECS)}") from None


def codec_names() -> list[str]:
    return sorted(_CODECS)
