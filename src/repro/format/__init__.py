"""PAX columnar file format (Parquet-like substrate).

The format partitions a table into row groups and each row group into
self-contained, individually-compressed column chunks — the paper's
*smallest computable units* — with a JSON footer carrying byte ranges,
sizes and min/max stats per chunk.

Typical use::

    from repro.format import Table, ColumnType, write_table, PaxFile

    table = Table.from_dict({"x": (ColumnType.INT64, [1, 2, 3])})
    data = write_table(table)
    assert PaxFile(data).read_table().equals(table)
"""

from repro.format.compression import DEFAULT_CODEC, codec_names, get_codec
from repro.format.metadata import (
    ChunkStats,
    ColumnChunkMeta,
    FileMetadata,
    RowGroupMeta,
)
from repro.format.pages import decode_column_chunk, encode_column_chunk
from repro.format.reader import FormatError, PaxFile, read_metadata, read_table
from repro.format.schema import ColumnType, Field, Schema
from repro.format.table import Column, Table
from repro.format.writer import DEFAULT_ROW_GROUP_ROWS, write_table

__all__ = [
    "DEFAULT_CODEC",
    "DEFAULT_ROW_GROUP_ROWS",
    "ChunkStats",
    "Column",
    "ColumnChunkMeta",
    "ColumnType",
    "Field",
    "FileMetadata",
    "FormatError",
    "PaxFile",
    "RowGroupMeta",
    "Schema",
    "Table",
    "codec_names",
    "decode_column_chunk",
    "encode_column_chunk",
    "get_codec",
    "read_metadata",
    "read_table",
    "write_table",
]
