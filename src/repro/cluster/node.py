"""Storage node: block store + network endpoint + disk + CPU cores.

A node physically stores erasure-code blocks (real bytes) and offers the
simulated primitives query execution is built from:

* ``read_block`` / ``read_block_range`` — disk reads returning real bytes
  while charging simulated disk time for the *scaled* byte count;
* ``compute`` — occupy a CPU core for a derived duration (decode, filter,
  projection work), charged to the query's processing bucket.

Real data sizes are multiplied by the store's ``size_scale`` before being
charged to simulated devices, letting small generated datasets exercise
paper-scale behaviour (a 10 MB generated lineitem file behaves like the
paper's 10 GB one with ``size_scale=1000``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import metrics as m
from repro.cluster.disk import Disk, DiskConfig
from repro.cluster.network import NetworkEndpoint
from repro.cluster.simcore import QueueFull, Resource, Simulator


@dataclass
class CpuConfig:
    """Per-core processing rates (bytes/second of input consumed).

    Chunk decode costs two phases: decompression, charged on the chunk's
    *compressed* bytes at ``decompress_bps``, and value materialisation
    (dictionary gather, bit-unpack), charged on the *uncompressed* bytes
    at ``materialize_bps``.  ``scan_bps`` covers running a filter or
    selecting projection values over decoded data (also on uncompressed
    bytes).  ``decode_bps`` is the generic rate used for erasure coding
    and metadata parsing.
    """

    cores: int = 16
    decompress_bps: float = 2.5e9
    materialize_bps: float = 8.0e9
    scan_bps: float = 8.0e9
    decode_bps: float = 3.0e9


class StorageNode:
    """One storage node in the simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        disk_config: DiskConfig,
        cpu_config: CpuConfig,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.disk = Disk(sim, disk_config)
        self.cpu_config = cpu_config
        self.cpu = Resource(sim, capacity=cpu_config.cores)
        self.endpoint = NetworkEndpoint(sim, f"node-{node_id}", cpu=self.cpu)
        # Trace labels for queue.wait spans: which node/device a queued
        # acquisition was waiting on (consumed by repro.obs.critpath).
        for resource, label in (
            (self.cpu, "cpu"),
            (self.disk.device, "disk"),
            (self.endpoint.ingress, "nic_in"),
            (self.endpoint.egress, "nic_out"),
        ):
            resource.trace_name = label
            resource.trace_node = node_id
        #: Cleared by Cluster.fail_node; stores route around dead nodes
        #: with degraded reads.
        self.alive = True
        self._blocks: dict[str, np.ndarray] = {}
        #: Write-ahead intent log for Put/Delete coordinated by this node
        #: (mirrored to the object's metadata replica nodes so recovery
        #: survives a dead coordinator).  Appends are metadata-plane
        #: operations: no simulated device time is charged.
        self.wal: list = []
        #: Materialized metadata replicas this node holds, by object
        #: name.  The replica payload stands in for the serialized
        #: location/placement map whose wire cost the stores charge when
        #: replicating it.
        self._meta_replicas: dict[str, object] = {}

    # -- block storage -----------------------------------------------------

    def put_block(self, block_id: str, data: np.ndarray) -> None:
        """Store a block's bytes (instantaneous; Put latency is modelled
        separately by the stores)."""
        self._blocks[block_id] = np.ascontiguousarray(data, dtype=np.uint8)

    def has_block(self, block_id: str) -> bool:
        return block_id in self._blocks

    def drop_block(self, block_id: str) -> None:
        """Simulate losing a block (for recovery tests)."""
        self._blocks.pop(block_id, None)

    def wipe_blocks(self) -> None:
        """Discard everything on disk — blocks, metadata replicas, and
        the write-ahead log (a disk loss, not just a reboot)."""
        self._blocks.clear()
        self._meta_replicas.clear()
        self.wal.clear()

    # -- metadata replicas -------------------------------------------------

    def put_meta(self, object_name: str, replica: object) -> None:
        """Store (or overwrite) one object's metadata replica."""
        self._meta_replicas[object_name] = replica

    def get_meta(self, object_name: str):
        """The stored metadata replica, or None."""
        return self._meta_replicas.get(object_name)

    def drop_meta(self, object_name: str) -> None:
        self._meta_replicas.pop(object_name, None)

    def meta_names(self) -> list[str]:
        """Replicated object names in sorted order (deterministic)."""
        return sorted(self._meta_replicas)

    def wal_append(self, record: object) -> None:
        """Append one WAL record (idempotent per record identity)."""
        if record not in self.wal:
            self.wal.append(record)

    def block_ids(self) -> list[str]:
        """Stored block ids in sorted order (deterministic iteration)."""
        return sorted(self._blocks)

    def corrupt_block(
        self, block_id: str, offset: int, length: int = 1, xor_mask: int = 0x5A
    ) -> None:
        """Silently flip bytes inside a stored block (bit rot).

        No metadata changes and no error is raised — only scrubbing (or
        a decode of the damaged range) can notice.
        """
        block = self._blocks[block_id]
        if not 0 <= offset < block.size:
            raise ValueError(f"offset {offset} outside block of size {block.size}")
        if not block.flags.writeable:  # stored views can be read-only
            block = block.copy()
            self._blocks[block_id] = block
        end = min(offset + length, block.size)
        block[offset:end] ^= np.uint8(xor_mask)

    def block_size(self, block_id: str) -> int:
        return self._blocks[block_id].size

    def peek_block(self, block_id: str) -> np.ndarray:
        """Stored bytes of a block with no simulated device time charged.

        For offline integrity checking (fsck); simulated reads go through
        :meth:`read_block` / :meth:`read_block_range`.
        """
        return self._blocks[block_id]

    @property
    def stored_bytes(self) -> int:
        return sum(b.size for b in self._blocks.values())

    # -- simulated primitives ------------------------------------------------

    def read_block_range(
        self,
        block_id: str,
        offset: int,
        length: int,
        scale: float,
        query: m.QueryMetrics | None = None,
    ):
        """Process: read ``[offset, offset+length)`` of a block from disk.

        Returns the real bytes; charges ``length * scale`` simulated bytes.
        """
        block = self._blocks.get(block_id)
        if block is None:
            raise KeyError(f"node {self.node_id} does not hold block {block_id!r}")
        if offset < 0 or offset + length > block.size:
            raise ValueError(
                f"range [{offset}, {offset + length}) out of bounds for "
                f"block {block_id!r} of size {block.size}"
            )
        yield from self.disk.read(int(length * scale), query)
        return block[offset : offset + length]

    def read_block(self, block_id: str, scale: float, query: m.QueryMetrics | None = None):
        """Process: read a whole block."""
        size = self.block_size(block_id)
        data = yield from self.read_block_range(block_id, 0, size, scale, query)
        return data

    def compute(self, seconds: float, query: m.QueryMetrics | None = None):
        """Process: occupy one CPU core for ``seconds`` of work.

        Raises :class:`~repro.cluster.simcore.QueueFull` when the CPU
        pool is admission-bounded and refuses the request; internal
        traffic (``query=None``) is exempt.
        """
        if seconds < 0:
            raise ValueError("negative compute time")
        start = self.sim.now
        tracer = self.sim.tracer
        span = (
            tracer.begin("cpu.compute", cat="device", node=self.node_id, work_s=seconds)
            if tracer is not None
            else None
        )
        priority = None if query is None else query.priority
        tenant = None if query is None else query.tenant
        try:
            with (
                yield from self.cpu.acquire(
                    priority, tenant=tenant, cost=max(seconds, 1e-9)
                )
            ):
                yield self.sim.timeout(seconds)
        except QueueFull:
            if span is not None:
                tracer.finish(span, rejected=True)
            raise
        if span is not None:
            tracer.finish(span)
        if query is not None:
            query.add(m.CPU, self.sim.now - start)

    def decode_seconds(self, compressed_bytes: int, plain_bytes: int, scale: float) -> float:
        """CPU time to decompress and decode one chunk to values."""
        return scale * (
            compressed_bytes / self.cpu_config.decompress_bps
            + plain_bytes / self.cpu_config.materialize_bps
        )

    def scan_seconds(self, plain_bytes: int, scale: float) -> float:
        """CPU time to filter/select over decoded values of given size."""
        return plain_bytes * scale / self.cpu_config.scan_bps
