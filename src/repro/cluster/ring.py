"""Seeded consistent-hash ring with virtual nodes.

Elastic membership needs a placement function whose output moves as
little data as possible when the node set changes: with a plain
``hash(name) % num_nodes`` (the seed's routing) almost every object
changes owner when a node joins.  A consistent-hash ring moves only
~``1/num_nodes`` of the keyspace per join/leave, and virtual nodes
smooth the per-node share so no member owns a disproportionate arc.

Everything is derived from SHA-256 over stable strings (the ring seed,
the node id, the vnode index, the key), so two rings built with the
same seed and member set agree exactly — across processes and runs —
and no ``random.Random`` state is consumed.  That keeps the cluster's
placement RNG untouched: runs with membership off draw exactly the
sequence they always did.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right


def _hash64(text: str) -> int:
    """First 8 bytes of SHA-256 over ``text`` as a big-endian int."""
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Virtual-node consistent-hash ring over integer node ids.

    ``vnodes`` tokens are planted per member at
    ``sha256("ring:<seed>:<node>:<vnode>")``; a key hashes to a point and
    is owned by the first token clockwise.  :meth:`nodes_for` walks on
    from there collecting *distinct* members, which is how stripe and
    replica placement get a deterministic, join/leave-stable node list.
    """

    def __init__(self, seed: int, vnodes: int = 64, node_ids=()) -> None:
        if vnodes < 1:
            raise ValueError("ring needs at least one virtual node per member")
        self.seed = seed
        self.vnodes = vnodes
        self._members: set[int] = set()
        #: Sorted (token, node_id) pairs; rebuilt on every membership change
        #: (changes are rare and the ring is small, so simplicity wins).
        self._tokens: list[tuple[int, int]] = []
        for nid in node_ids:
            self.add_node(nid)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    @property
    def members(self) -> tuple[int, ...]:
        return tuple(sorted(self._members))

    def _node_tokens(self, node_id: int) -> list[tuple[int, int]]:
        return [
            (_hash64(f"ring:{self.seed}:{node_id}:{v}"), node_id)
            for v in range(self.vnodes)
        ]

    def add_node(self, node_id: int) -> None:
        if node_id in self._members:
            return
        self._members.add(node_id)
        self._tokens.extend(self._node_tokens(node_id))
        self._tokens.sort()

    def remove_node(self, node_id: int) -> None:
        if node_id not in self._members:
            return
        self._members.discard(node_id)
        self._tokens = [t for t in self._tokens if t[1] != node_id]

    def lookup(self, key: str) -> int:
        """The member owning ``key`` (first token clockwise)."""
        if not self._tokens:
            raise ValueError("ring has no members")
        point = _hash64(key)
        idx = bisect_right(self._tokens, (point, 1 << 62))
        return self._tokens[idx % len(self._tokens)][1]

    def preference(self, key: str) -> list[int]:
        """Every member, ordered by the clockwise walk from ``key``.

        The first entry is :meth:`lookup`; the rest are the fallback
        order used when the owner is unavailable.
        """
        if not self._tokens:
            return []
        point = _hash64(key)
        start = bisect_right(self._tokens, (point, 1 << 62))
        seen: set[int] = set()
        order: list[int] = []
        for step in range(len(self._tokens)):
            nid = self._tokens[(start + step) % len(self._tokens)][1]
            if nid not in seen:
                seen.add(nid)
                order.append(nid)
                if len(order) == len(self._members):
                    break
        return order

    def nodes_for(self, key: str, count: int) -> list[int]:
        """``count`` node ids for ``key``'s blocks, distinct while the
        ring has enough members, then wrapping round the walk order
        (mirroring ``Cluster.choose_stripe_nodes`` on small clusters)."""
        order = self.preference(key)
        if not order:
            raise ValueError("ring has no members")
        if count <= len(order):
            return order[:count]
        return [order[i % len(order)] for i in range(count)]
