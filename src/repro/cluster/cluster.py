"""The simulated storage cluster.

Mirrors the paper's testbed topology: ``num_nodes`` identical storage
nodes plus one client endpoint, all attached to the same network fabric.
There is no dedicated coordinator — any node can coordinate a request,
selected by the hash of the object name (Section 5 of the paper).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.cluster.disk import DiskConfig
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.network import Network, NetworkConfig, NetworkEndpoint
from repro.cluster.node import CpuConfig, StorageNode
from repro.cluster.simcore import Simulator


@dataclass
class ClusterConfig:
    """Cluster topology and device parameters (paper defaults)."""

    num_nodes: int = 9
    network: NetworkConfig = field(default_factory=NetworkConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    placement_seed: int = 17


class Cluster:
    """A set of storage nodes, a client endpoint, and the shared fabric."""

    def __init__(self, sim: Simulator, config: ClusterConfig | None = None) -> None:
        self.sim = sim
        self.config = config or ClusterConfig()
        if self.config.num_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.network = Network(sim, self.config.network)
        self.nodes = [
            StorageNode(sim, i, self.config.disk, self.config.cpu)
            for i in range(self.config.num_nodes)
        ]
        self.client = NetworkEndpoint(sim, "client")
        self.metrics = ClusterMetrics()
        self._rng = random.Random(self.config.placement_seed)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> StorageNode:
        return self.nodes[node_id]

    def fail_node(self, node_id: int) -> None:
        """Mark a node dead: its blocks become unreachable until restore.

        Stores answer reads for its data with degraded reads (on-the-fly
        erasure-code reconstruction) until :meth:`restore_node` or an
        explicit recovery rebuilds the blocks elsewhere.
        """
        self.nodes[node_id].alive = False

    def restore_node(self, node_id: int) -> None:
        """Bring a failed node back (its stored blocks intact)."""
        self.nodes[node_id].alive = True

    def alive_nodes(self) -> list[int]:
        return [n.node_id for n in self.nodes if n.alive]

    def coordinator_for(self, object_name: str) -> StorageNode:
        """Route a request to a node by the hash of the object name."""
        digest = hashlib.sha256(object_name.encode("utf-8")).digest()
        return self.nodes[int.from_bytes(digest[:8], "big") % len(self.nodes)]

    def choose_stripe_nodes(self, count: int) -> list[int]:
        """Pick ``count`` distinct nodes for one stripe's blocks.

        The paper distributes each stripe across ``n`` randomly chosen
        nodes.  When the cluster has fewer than ``count`` nodes (the
        9-node testbed holds RS(9,6) stripes exactly), nodes wrap around
        round-robin from a random start so placement stays balanced.
        """
        if count <= len(self.nodes):
            return self._rng.sample(range(len(self.nodes)), count)
        start = self._rng.randrange(len(self.nodes))
        return [(start + i) % len(self.nodes) for i in range(count)]

    @property
    def stored_bytes(self) -> int:
        """Total bytes physically stored across all nodes."""
        return sum(node.stored_bytes for node in self.nodes)

    def cpu_utilization(self) -> float:
        """Mean CPU utilisation across nodes since time zero."""
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return sum(node.cpu.utilization(elapsed) for node in self.nodes) / len(self.nodes)
