"""The simulated storage cluster.

Mirrors the paper's testbed topology: ``num_nodes`` identical storage
nodes plus one client endpoint, all attached to the same network fabric.
There is no dedicated coordinator — any node can coordinate a request,
selected by the hash of the object name (Section 5 of the paper).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.cluster.disk import DiskConfig
from repro.cluster.health import NodeHealthTracker
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.network import Network, NetworkConfig, NetworkEndpoint
from repro.cluster.node import CpuConfig, StorageNode
from repro.cluster.simcore import Simulator


@dataclass
class ClusterConfig:
    """Cluster topology and device parameters (paper defaults)."""

    num_nodes: int = 9
    network: NetworkConfig = field(default_factory=NetworkConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    placement_seed: int = 17


class Cluster:
    """A set of storage nodes, a client endpoint, and the shared fabric."""

    def __init__(self, sim: Simulator, config: ClusterConfig | None = None) -> None:
        self.sim = sim
        self.config = config or ClusterConfig()
        if self.config.num_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.network = Network(sim, self.config.network)
        self.nodes = [
            StorageNode(sim, i, self.config.disk, self.config.cpu)
            for i in range(self.config.num_nodes)
        ]
        self.client = NetworkEndpoint(sim, "client")
        self.metrics = ClusterMetrics()
        self._rng = random.Random(self.config.placement_seed)
        #: Shared failure detector; liveness changes are pushed to it (and
        #: to any other registered listener) instead of being polled.
        self.health = NodeHealthTracker(self.config.num_nodes)
        self._liveness_listeners = [self.health.on_liveness]
        #: Optional FaultInjector (set by repro.cluster.faults); the RPC
        #: layer consults it for per-RPC drop windows.
        self.faults = None
        #: Optional CircuitBreakerBoard (installed by the stores when
        #: StoreConfig.breaker_failure_threshold > 0); :meth:`routable`
        #: consults it so traffic routes around open breakers.
        self.breakers = None
        #: Dedicated seeded RNG for retry-backoff jitter.  Separate from
        #: the placement RNG so drawing jitter mid-workload can never
        #: perturb later stripe placements; deterministic per run.
        self.jitter_rng = random.Random(self.config.placement_seed ^ 0x9E3779B9)

    def routable(self, node_id: int) -> bool:
        """May new ops be sent to ``node_id``?

        Combines the failure detector's view (down or suspect nodes are
        skipped) with the node's circuit breaker when one is installed
        (open breakers route around the node; a half-open breaker grants
        a single probe).
        """
        if not self.health.usable(node_id):
            return False
        return self.breakers is None or self.breakers.allow(node_id)

    def add_liveness_listener(self, callback) -> None:
        """Register ``callback(node_id, alive)`` for liveness changes."""
        self._liveness_listeners.append(callback)

    def _notify_liveness(self, node_id: int, alive: bool) -> None:
        for callback in self._liveness_listeners:
            callback(node_id, alive)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> StorageNode:
        return self.nodes[node_id]

    def fail_node(self, node_id: int, wipe: bool = False) -> None:
        """Mark a node dead: its blocks become unreachable until restore.

        Stores answer reads for its data with degraded reads (on-the-fly
        erasure-code reconstruction) until :meth:`restore_node` or an
        explicit recovery rebuilds the blocks elsewhere.  ``wipe=True``
        also discards the node's stored blocks (a disk loss: the node
        comes back empty on restore and its data must be repaired).

        Interested components (health trackers, store caches) are
        notified through the liveness-listener registry rather than
        having to poll ``node.alive``.
        """
        node = self.nodes[node_id]
        if wipe:
            node.wipe_blocks()
        if node.alive:
            node.alive = False
            self._notify_liveness(node_id, False)

    def restore_node(self, node_id: int) -> None:
        """Bring a failed node back (blocks intact unless it was wiped)."""
        node = self.nodes[node_id]
        if not node.alive:
            node.alive = True
            self._notify_liveness(node_id, True)

    def alive_nodes(self) -> list[int]:
        return [n.node_id for n in self.nodes if n.alive]

    def wal_records(self) -> list:
        """Every WAL record readable right now, deduplicated.

        Records are mirrored to each object's metadata replica nodes, so
        the union over *alive* nodes reconstructs the log even when the
        coordinator that wrote it is down.  Order: (op_id, phase-write
        order) — stable because mirrors append identical record objects.
        """
        seen: list = []
        for node in self.nodes:
            if not node.alive:
                continue
            for record in node.wal:
                if record not in seen:
                    seen.append(record)
        seen.sort(key=lambda r: (r.op_id, r.seq))
        return seen

    def coordinator_for(self, object_name: str) -> StorageNode:
        """Route a request to a node by the hash of the object name.

        Walks forward from the hashed slot to the first *alive* node so a
        coordinator crash does not take the object offline — new requests
        re-route to the next node (requests already in flight finish at
        the old coordinator; the model treats a query as owned by the
        node that accepted it).  With every node alive this is exactly
        the hashed node.
        """
        digest = hashlib.sha256(object_name.encode("utf-8")).digest()
        slot = int.from_bytes(digest[:8], "big") % len(self.nodes)
        for step in range(len(self.nodes)):
            node = self.nodes[(slot + step) % len(self.nodes)]
            if node.alive:
                return node
        return self.nodes[slot]  # whole cluster down: degenerate fallback

    def choose_stripe_nodes(self, count: int) -> list[int]:
        """Pick ``count`` distinct nodes for one stripe's blocks.

        The paper distributes each stripe across ``n`` randomly chosen
        nodes.  When the cluster has fewer than ``count`` nodes (the
        9-node testbed holds RS(9,6) stripes exactly), nodes wrap around
        round-robin from a random start so placement stays balanced.
        """
        if count <= len(self.nodes):
            return self._rng.sample(range(len(self.nodes)), count)
        start = self._rng.randrange(len(self.nodes))
        return [(start + i) % len(self.nodes) for i in range(count)]

    @property
    def stored_bytes(self) -> int:
        """Total bytes physically stored across all nodes."""
        return sum(node.stored_bytes for node in self.nodes)

    def cpu_utilization(self) -> float:
        """Mean CPU utilisation across nodes since time zero."""
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return sum(node.cpu.utilization(elapsed) for node in self.nodes) / len(self.nodes)
