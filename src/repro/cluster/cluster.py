"""The simulated storage cluster.

Mirrors the paper's testbed topology: ``num_nodes`` identical storage
nodes plus one client endpoint, all attached to the same network fabric.
There is no dedicated coordinator — any node can coordinate a request,
selected by the hash of the object name (Section 5 of the paper).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.cluster.disk import DiskConfig
from repro.cluster.health import NodeHealthTracker
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.network import Network, NetworkConfig, NetworkEndpoint
from repro.cluster.node import CpuConfig, StorageNode
from repro.cluster.simcore import Simulator


@dataclass
class ClusterConfig:
    """Cluster topology and device parameters (paper defaults)."""

    num_nodes: int = 9
    network: NetworkConfig = field(default_factory=NetworkConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    placement_seed: int = 17


class Cluster:
    """A set of storage nodes, a client endpoint, and the shared fabric."""

    def __init__(self, sim: Simulator, config: ClusterConfig | None = None) -> None:
        self.sim = sim
        self.config = config or ClusterConfig()
        if self.config.num_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.network = Network(sim, self.config.network)
        self.nodes = [
            StorageNode(sim, i, self.config.disk, self.config.cpu)
            for i in range(self.config.num_nodes)
        ]
        self.client = NetworkEndpoint(sim, "client")
        self.metrics = ClusterMetrics()
        self._rng = random.Random(self.config.placement_seed)
        #: Shared failure detector; liveness changes are pushed to it (and
        #: to any other registered listener) instead of being polled.
        self.health = NodeHealthTracker(self.config.num_nodes)
        self._liveness_listeners = [self.health.on_liveness]
        #: Optional FaultInjector (set by repro.cluster.faults); the RPC
        #: layer consults it for per-RPC drop windows.
        self.faults = None
        #: Optional CircuitBreakerBoard (installed by the stores when
        #: StoreConfig.breaker_failure_threshold > 0); :meth:`routable`
        #: consults it so traffic routes around open breakers.
        self.breakers = None
        #: Dedicated seeded RNG for retry-backoff jitter.  Separate from
        #: the placement RNG so drawing jitter mid-workload can never
        #: perturb later stripe placements; deterministic per run.
        self.jitter_rng = random.Random(self.config.placement_seed ^ 0x9E3779B9)
        #: Optional MembershipManager (installed by the stores when
        #: StoreConfig.membership_enabled is set); when present,
        #: coordinator routing and stripe placement go through its
        #: consistent-hash ring instead of the seed paths below.
        self.membership = None
        #: Admission knobs applied to node service queues, remembered so
        #: nodes joining at runtime get the same bounds (set by
        #: repro.cluster.overload.install_admission_control).
        self.admission: tuple[int, bool] | None = None
        #: Optional TenantQos board (installed by the stores when
        #: StoreConfig.qos_enabled is set; see repro.cluster.qos): DRR
        #: fair queues on node service loops plus tenant quota buckets.
        self.qos = None
        #: In-flight block migrations (block_id -> MigrationEntry, see
        #: repro.core.rebalance).  Metadata-plane intent registry: fsck
        #: classifies these blocks as pending rather than orphaned, and
        #: a restarted Rebalancer resolves them before migrating more.
        self.migrations: dict[str, object] = {}
        #: Optional continuous-telemetry Scraper (repro.obs.timeseries)
        #: installed by the stores when StoreConfig.scrape_interval_s > 0;
        #: rides the simulator's clock-listener hook and never schedules
        #: events.
        self.scraper = None
        #: Optional SLOEngine (repro.obs.slo) evaluating burn-rate alerts
        #: over the scraper's series when StoreConfig.slo_enabled is set.
        self.slo = None
        #: Anti-entropy read-repair queue: stripes whose foreground reads
        #: had to reconstruct data, keyed ``(store_kind, object_name,
        #: stripe_id) -> store`` (dict doubles as an ordered set so a hot
        #: stripe enqueues once).  Drained by the RepairManager at
        #: background priority.
        self.read_repairs: dict[tuple, object] = {}
        # Health-tier flips (greylist/clear) become tracer instants so
        # gray-failure onset is visible on the timeline.
        self.health.on_tier_change.append(self._on_tier_change)

    def _on_tier_change(self, node_id: int, greylisted: bool) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(
                "health.greylist" if greylisted else "health.clear",
                cat="health",
                node=node_id,
            )

    def reachable(self, src_id: int, dst_id: int) -> bool:
        """Can ``src_id`` exchange RPCs with ``dst_id`` right now?

        False only when a severed link (partition) separates them —
        drop-rates and latency degrade but do not disconnect.  Cheap in
        fault-free runs (the link matrix is empty)."""
        if src_id == dst_id or not self.network.links:
            return True
        return not self.network.link_severed(
            self.nodes[src_id].endpoint.name, self.nodes[dst_id].endpoint.name
        )

    def enqueue_read_repair(self, store, store_kind: str, object_name: str, stripe_id: int) -> None:
        """Queue a stripe for anti-entropy repair after a degraded or
        checksum-failed foreground read reconstructed its data."""
        key = (store_kind, object_name, stripe_id)
        if key in self.read_repairs:
            return
        self.read_repairs[key] = store
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(
                "read_repair.enqueue", cat="repair", object=object_name, stripe=stripe_id
            )

    def routable(self, node_id: int) -> bool:
        """May new ops be sent to ``node_id``?

        Combines the failure detector's view (down or suspect nodes are
        skipped) with the node's circuit breaker when one is installed
        (open breakers route around the node; a half-open breaker grants
        a single probe).
        """
        if not self.health.usable(node_id):
            return False
        return self.breakers is None or self.breakers.allow(node_id)

    def add_liveness_listener(self, callback) -> None:
        """Register ``callback(node_id, alive)`` for liveness changes."""
        self._liveness_listeners.append(callback)

    def _notify_liveness(self, node_id: int, alive: bool) -> None:
        for callback in self._liveness_listeners:
            callback(node_id, alive)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> StorageNode:
        return self.nodes[node_id]

    def fail_node(self, node_id: int, wipe: bool = False) -> None:
        """Mark a node dead: its blocks become unreachable until restore.

        Stores answer reads for its data with degraded reads (on-the-fly
        erasure-code reconstruction) until :meth:`restore_node` or an
        explicit recovery rebuilds the blocks elsewhere.  ``wipe=True``
        also discards the node's stored blocks (a disk loss: the node
        comes back empty on restore and its data must be repaired).

        Interested components (health trackers, store caches) are
        notified through the liveness-listener registry rather than
        having to poll ``node.alive``.
        """
        node = self.nodes[node_id]
        if wipe:
            node.wipe_blocks()
        if node.alive:
            node.alive = False
            self._notify_liveness(node_id, False)

    def restore_node(self, node_id: int) -> None:
        """Bring a failed node back (blocks intact unless it was wiped)."""
        node = self.nodes[node_id]
        if not node.alive:
            node.alive = True
            self._notify_liveness(node_id, True)

    def alive_nodes(self) -> list[int]:
        return [n.node_id for n in self.nodes if n.alive]

    # -- elastic membership (requires an installed MembershipManager for
    # -- drain/remove; add_node works bare but only changes routing when
    # -- membership is on) ---------------------------------------------------

    def add_node(self) -> int:
        """Grow the cluster by one node at runtime; returns its id.

        The new node gets the cluster's device configs and the same
        admission bounds the others run with; the health tracker and
        breaker board grow to cover it.  With membership installed it
        joins the ring (epoch bump) and immediately becomes a placement
        and coordination target — existing data follows via the
        Rebalancer, not here.
        """
        node_id = len(self.nodes)
        node = StorageNode(self.sim, node_id, self.config.disk, self.config.cpu)
        self.nodes.append(node)
        self.health.ensure_size(len(self.nodes))
        if self.breakers is not None:
            self.breakers.ensure_size(len(self.nodes))
        if self.admission is not None:
            depth, shed = self.admission
            for resource in (
                node.cpu,
                node.disk.device,
                node.endpoint.egress,
                node.endpoint.ingress,
            ):
                resource.max_queue = depth
                resource.shed_low_priority = shed
        if self.qos is not None:
            self.qos.attach(node)
        if self.membership is not None:
            self.membership.join(node_id)
        return node_id

    def drain_node(self, node_id: int) -> None:
        """Take a node out of new placements/coordination; it stays alive
        and keeps serving reads until the Rebalancer empties it."""
        if self.membership is None:
            raise RuntimeError("drain_node requires membership_enabled")
        self.membership.drain(node_id)

    def remove_node(self, node_id: int) -> None:
        """Retire a drained node: drop it from the member set and mark it
        dead.  Its slot in ``nodes`` stays (ids are stable indexes)."""
        if self.membership is None:
            raise RuntimeError("remove_node requires membership_enabled")
        self.membership.remove(node_id)
        self.fail_node(node_id)

    def wal_records(self) -> list:
        """Every WAL record readable right now, deduplicated.

        Records are mirrored to each object's metadata replica nodes, so
        the union over *alive* nodes reconstructs the log even when the
        coordinator that wrote it is down.  Order: (op_id, phase-write
        order) — stable because mirrors append identical record objects.
        """
        seen: list = []
        for node in self.nodes:
            if not node.alive:
                continue
            for record in node.wal:
                if record not in seen:
                    seen.append(record)
        seen.sort(key=lambda r: (r.op_id, r.seq))
        return seen

    def coordinator_for(self, object_name: str) -> StorageNode:
        """Route a request to a node by the hash of the object name.

        Walks forward from the hashed slot to the first *alive* node so a
        coordinator crash does not take the object offline — new requests
        re-route to the next node (requests already in flight finish at
        the old coordinator; the model treats a query as owned by the
        node that accepted it).  With every node alive this is exactly
        the hashed node.

        With membership installed, routing goes through the hash ring
        instead (draining and removed nodes are never chosen).
        """
        if self.membership is not None:
            return self.membership.coordinator_for(object_name)
        digest = hashlib.sha256(object_name.encode("utf-8")).digest()
        slot = int.from_bytes(digest[:8], "big") % len(self.nodes)
        for step in range(len(self.nodes)):
            node = self.nodes[(slot + step) % len(self.nodes)]
            if node.alive:
                return node
        return self.nodes[slot]  # whole cluster down: degenerate fallback

    def choose_stripe_nodes(self, count: int) -> list[int]:
        """Pick ``count`` distinct nodes for one stripe's blocks.

        The paper distributes each stripe across ``n`` randomly chosen
        nodes.  When the cluster has fewer than ``count`` nodes (the
        9-node testbed holds RS(9,6) stripes exactly), nodes wrap around
        round-robin from a random start so placement stays balanced.
        """
        if count <= len(self.nodes):
            return self._rng.sample(range(len(self.nodes)), count)
        start = self._rng.randrange(len(self.nodes))
        return [(start + i) % len(self.nodes) for i in range(count)]

    def place_stripe(self, key: str, count: int) -> list[int]:
        """Placement for the blocks (or meta replicas) behind ``key``.

        With membership installed this is the ring's deterministic walk
        from the key — stable under joins and drains, which is what lets
        the Rebalancer recompute "where should this stripe live now?"
        and converge.  Without membership it delegates to
        :meth:`choose_stripe_nodes`, consuming the placement RNG exactly
        as the seed always did.
        """
        if self.membership is not None:
            return self.membership.placement_for(key, count)
        return self.choose_stripe_nodes(count)

    @property
    def stored_bytes(self) -> int:
        """Total bytes physically stored across all nodes."""
        return sum(node.stored_bytes for node in self.nodes)

    def cpu_utilization(self) -> float:
        """Mean CPU utilisation across nodes since time zero."""
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return sum(node.cpu.utilization(elapsed) for node in self.nodes) / len(self.nodes)
