"""A small discrete-event simulation kernel.

The paper evaluates Fusion on a 10-machine cluster with 25 Gbps NICs and
NVMe disks; we reproduce the latency *shape* with a discrete-event
simulation in which network links, disks and CPU cores are contended
resources.  This module is the kernel: a virtual clock, an event heap, and
generator-based processes in the style of SimPy.

A process is a Python generator that yields :class:`Event` objects; the
process resumes when the yielded event fires.  Key primitives:

* :meth:`Simulator.timeout` — an event that fires after a delay.
* :class:`Resource` — FIFO resource with integer capacity (a NIC pipe, a
  disk, a pool of CPU cores).
* :meth:`Simulator.process` — spawn a process; the returned
  :class:`Process` is itself an event that fires when the generator
  returns, carrying its return value.
* :func:`all_of` — barrier over a set of events.

Example::

    sim = Simulator()
    disk = Resource(sim, capacity=1)

    def read(nbytes):
        with (yield from disk.acquire()):
            yield sim.timeout(nbytes / 2e9)
        return nbytes

    proc = sim.process(read(1_000_000))
    sim.run()
    assert proc.value == 1_000_000
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Generator, Iterable


class SimulationError(Exception):
    """Raised on kernel misuse (e.g. running a finished simulation step)."""


class QueueFull(Exception):
    """An admission-controlled :class:`Resource` refused a request.

    ``shed`` distinguishes the two refusal shapes: ``False`` means the
    arriving request was rejected at the door (queue at ``max_queue``),
    ``True`` means the request had been queued but was evicted to make
    room for higher-priority work (``shed_low_priority`` policy).
    """

    def __init__(self, message: str, shed: bool = False) -> None:
        super().__init__(message)
        self.shed = shed


#: Sent through a waiter's gate to evict it from a Resource queue.
_SHED = object()


class Event:
    """A one-shot occurrence on the simulation timeline.

    Events start pending, then fire exactly once (with an optional value);
    callbacks added after firing run immediately.
    """

    __slots__ = ("sim", "_fired", "value", "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._fired = False
        self.value: object = None
        self._callbacks: list[Callable[[Event], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    def succeed(self, value: object = None) -> "Event":
        """Fire the event now, delivering ``value`` to waiters."""
        if self._fired:
            raise SimulationError("event already fired")
        self._fired = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self._fired:
            cb(self)
        else:
            self._callbacks.append(cb)


class Process(Event):
    """A running generator; fires (as an Event) when the generator returns."""

    __slots__ = ("_gen", "_ctx", "_cancelled")

    def __init__(self, sim: "Simulator", gen: Generator) -> None:
        super().__init__(sim)
        self._gen = gen
        self._cancelled = False
        # Trace context: a process inherits the span that was current when
        # it was spawned, and carries its own span stack across steps so
        # interleaved processes don't corrupt each other's parentage.
        tracer = sim.tracer
        self._ctx = tracer._current if tracer is not None else None
        sim._schedule(sim.now, self._step, None)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Stop the process without waiting for it to finish.

        Closing the generator raises ``GeneratorExit`` at its suspension
        point, so ``with`` blocks release held resources and pending
        :class:`Resource` queue slots are withdrawn.  The process then
        fires with value ``None`` so barriers waiting on it unblock.  Any
        timeline events it was waiting on still fire and drain from the
        heap; their callbacks become no-ops.  Cancelling a finished or
        currently-executing process is a no-op.
        """
        if self._fired or self._cancelled:
            return
        if self.sim.active_process is self or self._gen.gi_running:
            return  # cannot unwind a generator that is mid-step
        self._cancelled = True
        self._gen.close()
        self.succeed(None)

    def _step(self, event: Event | None) -> None:
        if self._cancelled:
            return
        tracer = self.sim.tracer
        if tracer is not None:
            prev = tracer._current
            tracer._current = self._ctx
        prev_active = self.sim.active_process
        self.sim.active_process = self
        try:
            try:
                value = event.value if event is not None else None
                target = self._gen.send(value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process yielded {target!r}; processes must yield Event objects"
                )
            target.add_callback(self._step)
        finally:
            self.sim.active_process = prev_active
            if tracer is not None:
                self._ctx = tracer._current
                tracer._current = prev


class Simulator:
    """The event loop: a clock and a time-ordered event heap."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable, object]] = []
        self._seq = 0
        #: Optional :class:`repro.obs.Tracer`; ``None`` means tracing is
        #: off and instrumented code pays one attribute load + None check.
        self.tracer = None
        #: The :class:`Process` whose generator is currently executing a
        #: step (``None`` between steps).  Used by cancellation scopes to
        #: avoid closing a generator from within its own frame.
        self.active_process: Process | None = None
        #: Clock listeners: ``callback(to)`` fires in :meth:`run` whenever
        #: the clock is about to advance from ``now`` to ``to`` (once per
        #: distinct time step, before the event at ``to`` executes).
        #: Listeners are observers only — they must never schedule events
        #: or mutate simulation state, which keeps the event stream
        #: bit-identical with or without them (the telemetry scraper's
        #: zero-perturbation contract).
        self._clock_listeners: list[Callable[[float], None]] = []

    def add_clock_listener(self, callback: Callable[[float], None]) -> None:
        """Register an observe-only callback for clock advances."""
        self._clock_listeners.append(callback)

    def _schedule(self, at: float, callback: Callable, arg: object) -> None:
        if at < self.now:
            raise SimulationError(f"cannot schedule in the past ({at} < {self.now})")
        heapq.heappush(self._heap, (at, self._seq, callback, arg))
        self._seq += 1

    def timeout(self, delay: float, value: object = None) -> Event:
        """An event firing ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        event = Event(self)
        self._schedule(self.now + delay, lambda _: event.succeed(value), None)
        return event

    def event(self) -> Event:
        """A bare event to be fired manually."""
        return Event(self)

    def process(self, gen: Generator) -> Process:
        """Spawn a process from a generator; starts at the current time."""
        return Process(self, gen)

    def run(self, until: float | None = None) -> None:
        """Run until the heap drains (or the clock passes ``until``)."""
        listeners = self._clock_listeners
        while self._heap:
            at, _seq, callback, arg = self._heap[0]
            if until is not None and at > until:
                if listeners and until > self.now:
                    for listener in listeners:
                        listener(until)
                self.now = until
                return
            heapq.heappop(self._heap)
            if listeners and at > self.now:
                for listener in listeners:
                    listener(at)
            self.now = at
            callback(arg)
        if until is not None:
            if listeners and until > self.now:
                for listener in listeners:
                    listener(until)
            self.now = max(self.now, until)


class _ReleaseContext:
    """Context manager returned by ``Resource.acquire`` for scoped holds."""

    __slots__ = ("_resource", "_released")

    def __init__(self, resource: "Resource") -> None:
        self._resource = resource
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._resource._release()

    def __enter__(self) -> "_ReleaseContext":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class Resource:
    """A FIFO-queued resource with integer capacity.

    Usage inside a process::

        with (yield from resource.acquire()):
            yield sim.timeout(service_time)

    Admission control: when ``max_queue`` is set (``None`` = unbounded),
    an admission-controlled acquisition (``priority`` given as an int)
    arriving while ``queue_length >= max_queue`` raises
    :class:`QueueFull` instead of waiting — unless ``shed_low_priority``
    is on and a strictly lower-priority request is waiting, in which
    case the newest such waiter is evicted (it raises ``QueueFull`` with
    ``shed=True``) and the arrival takes its place.  Acquisitions with
    ``priority=None`` (internal/control traffic) always queue and are
    never rejected or shed.
    """

    def __init__(
        self, sim: Simulator, capacity: int = 1, max_queue: int | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.max_queue = max_queue
        self.shed_low_priority = False
        self._in_use = 0
        self._waiters: deque[tuple[Event, int | None]] = deque()
        #: Optional per-tenant DRR dispatcher (repro.cluster.qos.FairQueue),
        #: attached by install_qos.  None keeps the legacy FIFO lanes the
        #: only queue, so untenanted runs never touch the fair path.
        self.fair = None
        #: Optional trace labels (set by StorageNode for its service
        #: resources) stamped onto ``queue.wait`` spans so the critical-
        #: path analyzer can attribute waiting to a node and device.
        self.trace_name: str | None = None
        self.trace_node: int | None = None
        # Accounting for utilisation metrics and admission decisions.
        self.busy_time = 0.0
        self._last_change = 0.0
        self.rejected_total = 0
        self.shed_total = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        n = len(self._waiters)
        if self.fair is not None:
            n += self.fair.total
        return n

    def _account(self) -> None:
        now = self.sim.now
        self.busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def _admit(self, priority: int) -> None:
        """Make room for an arriving waiter or raise :class:`QueueFull`."""
        if self.shed_low_priority:
            victim = None
            for i in range(len(self._waiters) - 1, -1, -1):
                _gate, prio = self._waiters[i]
                if prio is not None and prio < priority:
                    if victim is None or prio < self._waiters[victim][1]:
                        victim = i
            if victim is not None:
                gate, _prio = self._waiters[victim]
                del self._waiters[victim]
                self.shed_total += 1
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.instant("shed", cat="overload")
                gate.succeed(_SHED)
                return
        self.rejected_total += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("admission.reject", cat="overload")
        raise QueueFull(
            f"admission queue full ({len(self._waiters)}/{self.max_queue})"
        )

    def _admit_tenant(self, tenant: str, priority: int) -> None:
        """Per-tenant depth enforcement: shed within the tenant or refuse.

        Mirrors :meth:`_admit` but the victim search is confined to the
        arriving tenant's own sub-queues — one tenant's backlog can never
        evict another tenant's queued work.
        """
        if self.shed_low_priority:
            victim = self.fair.shed_lowest(tenant, priority)
            if victim is not None:
                self.shed_total += 1
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.instant("shed", cat="overload", tenant=tenant)
                victim.gate.succeed(_SHED)
                return
        self.rejected_total += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("admission.reject", cat="overload", tenant=tenant)
        raise QueueFull(
            f"tenant {tenant!r} admission queue full "
            f"({self.fair.depth(tenant)}/{self.fair.depth_limit})"
        )

    def acquire(
        self,
        priority: int | None = None,
        tenant: str | None = None,
        cost: float = 1.0,
    ) -> Generator[Event, None, _ReleaseContext]:
        """Generator-style acquisition; yields until a slot is granted."""
        self._account()
        if self._in_use < self.capacity:
            self._in_use += 1
        elif self.fair is not None and tenant is not None:
            limit = self.fair.depth_limit
            if (
                priority is not None
                and limit is not None
                and self.fair.depth(tenant) >= limit
            ):
                self._admit_tenant(tenant, priority)
            gate = Event(self.sim)
            fair_entry = self.fair.push(tenant, priority, gate, cost)
            wspan = self._begin_wait()
            try:
                got = yield gate
            except GeneratorExit:
                self._finish_wait(wspan, cancelled=True)
                if not self.fair.remove(fair_entry):
                    if gate.fired and gate.value is not _SHED:
                        self._release()
                raise
            if got is _SHED:
                self._finish_wait(wspan, shed=True)
                raise QueueFull("request shed for higher-priority work", shed=True)
            self._finish_wait(wspan)
        else:
            if (
                priority is not None
                and self.max_queue is not None
                and len(self._waiters) >= self.max_queue
            ):
                self._admit(priority)
            gate = Event(self.sim)
            entry = (gate, priority)
            self._waiters.append(entry)
            wspan = self._begin_wait()
            try:
                got = yield gate
            except GeneratorExit:
                self._finish_wait(wspan, cancelled=True)
                # The owning process was cancelled while queued: withdraw
                # the request so _release never hands a slot to a corpse.
                try:
                    self._waiters.remove(entry)
                except ValueError:
                    if gate.fired and gate.value is not _SHED:
                        # The slot was transferred just before the close
                        # landed; pass it on so it is not leaked.
                        self._release()
                raise
            if got is _SHED:
                self._finish_wait(wspan, shed=True)
                raise QueueFull("request shed for higher-priority work", shed=True)
            self._finish_wait(wspan)
            # Slot was transferred to us by _release; nothing to increment.
        return _ReleaseContext(self)

    def _begin_wait(self):
        """Open a ``queue.wait`` span around a queued acquisition.

        Metadata-plane: spans never schedule events, so tracing a wait
        cannot perturb the timeline.
        """
        tracer = self.sim.tracer
        if tracer is None:
            return None
        return tracer.begin(
            "queue.wait", cat="queue",
            resource=self.trace_name, node=self.trace_node,
        )

    def _finish_wait(self, span, **args) -> None:
        if span is not None:
            self.sim.tracer.finish(span, **args)

    def _release(self) -> None:
        self._account()
        if self._waiters:
            # Legacy FIFO (untenanted/internal traffic) drains first so
            # control-plane work never starves behind tenant backlogs.
            gate, _prio = self._waiters.popleft()
            gate.succeed()
        elif self.fair is not None and self.fair.total:
            self.fair.pop().gate.succeed()
        else:
            self._in_use -= 1

    def utilization(self, elapsed: float) -> float:
        """Average fraction of capacity in use over ``elapsed`` seconds."""
        self._account()
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.capacity)


def all_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that fires once every input event has fired.

    Its value is the list of input event values in input order.
    """
    events = list(events)
    done = sim.event()
    if not events:
        done.succeed([])
        return done
    remaining = [len(events)]

    def on_fire(_event: Event) -> None:
        remaining[0] -= 1
        if remaining[0] == 0:
            done.succeed([e.value for e in events])

    for e in events:
        e.add_callback(on_fire)
    return done


def any_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that fires when the *first* input event fires.

    Its value is the winning event object.  Later inputs firing are
    ignored.  Creates no timeline entries, so racing an event against a
    pure signal does not perturb the scheduled-event stream.
    """
    events = list(events)
    if not events:
        raise SimulationError("any_of needs at least one event")
    done = sim.event()

    def on_fire(event: Event) -> None:
        if not done.fired:
            done.succeed(event)

    for e in events:
        e.add_callback(on_fire)
    return done
