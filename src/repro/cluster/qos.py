"""Per-tenant QoS: fair-share scheduling, quotas, noisy-neighbor isolation.

Fusion is a *shared* analytics store: many tenants' queries push compute
down into the same storage nodes, so one tenant's scan storm contends
directly with everyone else's pushdown CPU, disk and NIC time.  PR 5
bounded the damage globally (admission queues, deadlines, breakers) but
nothing distinguished *whose* request was queued — a storming tenant
could fill every admission queue and starve a polite one.

This module adds the missing half:

* :class:`FairQueue` — a deficit-round-robin (DRR) dispatcher over
  per-tenant sub-queues, installed on each node's CPU/disk/NIC
  :class:`~repro.cluster.simcore.Resource`.  Higher priority lanes still
  drain first; *within* a lane, tenants are served in proportion to
  their configured weight, measured in the resource's own cost units
  (seconds of CPU, bytes of disk or NIC).
* Bounded per-tenant queue depth — one tenant's backlog can never evict
  or crowd out another tenant's admissions; shedding stays *within* the
  offending tenant's own sub-queues.
* :class:`TokenBucket` quotas — per-tenant requests/s and bytes/s,
  refilled lazily on the simulated clock (pure clock reads: quota
  checks schedule no events and cannot perturb the timeline).
* :class:`QuotaExceeded` — the typed refusal an over-quota request gets
  (or, under ``quota_policy="demote"``, the request is demoted to the
  background priority lane instead).

Everything here is off unless ``StoreConfig.qos_enabled`` is set, and a
:class:`~repro.cluster.simcore.Resource` without an attached FairQueue
(or an acquisition without a ``tenant``) runs the exact pre-QoS code
path — fault-free default-knob runs stay event-stream bit-identical.
"""

from __future__ import annotations

from collections import deque

from repro.cluster.overload import BACKGROUND_PRIORITY

#: Quota refusal policies.
QUOTA_POLICIES = ("reject", "demote")


class QuotaExceeded(Exception):
    """A tenant exceeded its token-bucket rate quota.

    Typed, like every other protection refusal: callers that opted into
    QoS see *which* tenant was refused and which bucket (``"requests"``
    or ``"bytes"``) ran dry — never a silent drop.
    """

    def __init__(self, tenant: str, resource: str, message: str) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.resource = resource


class TokenBucket:
    """A token bucket refilled lazily on the simulated clock.

    ``try_consume`` reads ``sim.now`` and never schedules events, so
    quota accounting is invisible to the event stream.
    """

    __slots__ = ("sim", "rate", "capacity", "tokens", "_last")

    def __init__(self, sim, rate: float, burst_s: float = 1.0) -> None:
        if rate <= 0:
            raise ValueError("token bucket rate must be > 0")
        self.sim = sim
        self.rate = float(rate)
        self.capacity = max(self.rate * burst_s, 1.0)
        self.tokens = self.capacity
        self._last = sim.now

    def try_consume(self, amount: float) -> bool:
        now = self.sim.now
        if now > self._last:
            self.tokens = min(self.capacity, self.tokens + (now - self._last) * self.rate)
            self._last = now
        if amount <= self.tokens:
            self.tokens -= amount
            return True
        return False


class _FairEntry:
    """One queued acquisition inside a FairQueue."""

    __slots__ = ("gate", "tenant", "priority", "cost", "tier_key")

    def __init__(self, gate, tenant: str, priority, cost: float, tier_key: int) -> None:
        self.gate = gate
        self.tenant = tenant
        self.priority = priority
        self.cost = cost
        self.tier_key = tier_key


class _Tier:
    """One priority lane: per-tenant sub-queues served by DRR."""

    __slots__ = ("queues", "active", "deficit", "quantum")

    def __init__(self) -> None:
        self.queues: dict[str, deque] = {}
        self.active: deque[str] = deque()  # round-robin ring of backlogged tenants
        self.deficit: dict[str, float] = {}
        # DRR quantum unit, tracked as the largest cost seen so one full
        # round always releases at least one entry per tenant visited.
        self.quantum = 1.0


def _tier_key(priority) -> int:
    # Tenanted internal traffic (priority None) outranks both lanes,
    # mirroring the legacy rule that None is exempt admission traffic.
    return 1 << 30 if priority is None else int(priority)


class FairQueue:
    """Deficit-round-robin dispatcher over per-tenant sub-queues.

    Attached to a :class:`~repro.cluster.simcore.Resource` as its
    ``fair`` attribute by :func:`install_qos`.  The Resource pushes
    tenanted waiters here and asks :meth:`pop` for the next one to
    serve on each release; untenanted waiters keep the legacy FIFO and
    are always served first (internal/control traffic must not starve
    behind tenant backlogs).
    """

    __slots__ = ("qos", "total", "_tiers")

    def __init__(self, qos: "TenantQos") -> None:
        self.qos = qos
        self.total = 0
        self._tiers: dict[int, _Tier] = {}

    @property
    def depth_limit(self) -> int | None:
        return self.qos.depth_limit

    def depth(self, tenant: str) -> int:
        """Queued entries for ``tenant`` across all priority lanes."""
        n = 0
        for tier in self._tiers.values():
            q = tier.queues.get(tenant)
            if q:
                n += len(q)
        return n

    def push(self, tenant: str, priority, gate, cost: float) -> _FairEntry:
        key = _tier_key(priority)
        tier = self._tiers.get(key)
        if tier is None:
            tier = self._tiers[key] = _Tier()
        entry = _FairEntry(gate, tenant, priority, max(cost, 0.0), key)
        q = tier.queues.get(tenant)
        if q is None:
            q = tier.queues[tenant] = deque()
        if not q:
            tier.active.append(tenant)
            tier.deficit.setdefault(tenant, 0.0)
        q.append(entry)
        if entry.cost > tier.quantum:
            tier.quantum = entry.cost
        self.total += 1
        return entry

    def pop(self) -> _FairEntry | None:
        """Dequeue the next entry: highest lane first, DRR within it."""
        if self.total == 0:
            return None
        for key in sorted(self._tiers, reverse=True):
            tier = self._tiers[key]
            entry = self._pop_tier(tier)
            if entry is not None:
                self.total -= 1
                return entry
        return None

    def _pop_tier(self, tier: _Tier) -> _FairEntry | None:
        while tier.active:
            tenant = tier.active[0]
            q = tier.queues.get(tenant)
            if not q:
                tier.active.popleft()
                tier.deficit[tenant] = 0.0
                continue
            head = q[0]
            if tier.deficit[tenant] >= head.cost:
                tier.deficit[tenant] -= head.cost
                q.popleft()
                if not q:
                    tier.active.popleft()
                    tier.deficit[tenant] = 0.0
                return head
            tier.deficit[tenant] += tier.quantum * self.qos.weight(tenant)
            tier.active.rotate(-1)
        return None

    def remove(self, entry: _FairEntry) -> bool:
        """Withdraw a queued entry (cancelled owner); False if not queued."""
        tier = self._tiers.get(entry.tier_key)
        if tier is None:
            return False
        q = tier.queues.get(entry.tenant)
        if q is None:
            return False
        try:
            q.remove(entry)
        except ValueError:
            return False
        self.total -= 1
        return True

    def shed_lowest(self, tenant: str, priority: int) -> _FairEntry | None:
        """Pick the victim for an over-depth arrival: the newest of the
        *same tenant's* strictly-lower-priority queued entries (lowest
        lane first).  Never touches another tenant's queue — that is the
        isolation guarantee per-tenant depth exists to provide.
        """
        arriving = _tier_key(priority)
        for key in sorted(self._tiers):
            if key >= arriving:
                break
            tier = self._tiers[key]
            q = tier.queues.get(tenant)
            if q:
                entry = q.pop()
                if not q:
                    try:
                        tier.active.remove(tenant)
                    except ValueError:
                        pass
                    tier.deficit[tenant] = 0.0
                self.total -= 1
                return entry
        return None


class TenantQos:
    """Cluster-wide QoS board: weights, quotas, per-tenant refusal stats.

    Installed as ``cluster.qos`` by :func:`install_qos`; the stores call
    :meth:`admit` at their Put/Get/Query frontends and the per-node
    Resources consult :meth:`weight`/:attr:`depth_limit` via their
    attached :class:`FairQueue`.
    """

    def __init__(
        self,
        sim,
        *,
        weights: dict | None = None,
        requests_per_s: dict | None = None,
        bytes_per_s: dict | None = None,
        burst_s: float = 1.0,
        policy: str = "reject",
        depth_limit: int | None = None,
    ) -> None:
        if policy not in QUOTA_POLICIES:
            raise ValueError(f"quota_policy must be one of {QUOTA_POLICIES}, got {policy!r}")
        self.sim = sim
        self.weights = dict(weights or {})
        self.policy = policy
        self.depth_limit = depth_limit if depth_limit and depth_limit > 0 else None
        self._burst_s = burst_s
        self._req_rates = dict(requests_per_s or {})
        self._byte_rates = dict(bytes_per_s or {})
        self._req_buckets: dict[str, TokenBucket] = {}
        self._byte_buckets: dict[str, TokenBucket] = {}
        #: Per-tenant frontend accounting: admitted / quota_rejected /
        #: demoted request counts (refusals deeper in the stack — sheds,
        #: rejects, deadline misses — flow through ClusterMetrics).
        self.stats: dict[str, dict[str, int]] = {}

    def weight(self, tenant: str) -> float:
        """Configured DRR weight; unknown tenants get equal share (1.0)."""
        w = self.weights.get(tenant, 1.0)
        return w if w > 0 else 1.0

    def _stats(self, tenant: str) -> dict[str, int]:
        s = self.stats.get(tenant)
        if s is None:
            s = self.stats[tenant] = {"admitted": 0, "quota_rejected": 0, "demoted": 0}
        return s

    def _bucket(self, cache, rates, tenant) -> TokenBucket | None:
        bucket = cache.get(tenant)
        if bucket is None and tenant in rates:
            bucket = cache[tenant] = TokenBucket(self.sim, rates[tenant], self._burst_s)
        return bucket

    def admit(self, tenant: str, metrics=None, nbytes: int = 0) -> None:
        """Charge one request (plus ``nbytes``) against the tenant's quota.

        Raises :class:`QuotaExceeded` under the ``reject`` policy; under
        ``demote`` the request proceeds at background priority instead
        (``metrics.priority`` is rewritten in place).  Tenants with no
        configured quota are only ever fair-scheduled, never refused here.
        """
        over = None
        req = self._bucket(self._req_buckets, self._req_rates, tenant)
        if req is not None and not req.try_consume(1.0):
            over = "requests"
        if over is None and nbytes > 0:
            byt = self._bucket(self._byte_buckets, self._byte_rates, tenant)
            if byt is not None and not byt.try_consume(float(nbytes)):
                over = "bytes"
        stats = self._stats(tenant)
        if over is None:
            stats["admitted"] += 1
            return
        tracer = self.sim.tracer
        if self.policy == "demote":
            stats["demoted"] += 1
            if tracer is not None:
                tracer.instant("quota.demote", cat="qos", tenant=tenant, bucket=over)
            if metrics is not None:
                metrics.priority = BACKGROUND_PRIORITY
                metrics.quota_demotions += 1
            return
        stats["quota_rejected"] += 1
        if metrics is not None:
            metrics.quota_exceeded += 1
        if tracer is not None:
            tracer.instant("quota.exceeded", cat="qos", tenant=tenant, bucket=over)
        raise QuotaExceeded(
            tenant, over, f"tenant {tenant!r} over its {over} quota"
        )

    def attach(self, node) -> None:
        """Put a DRR dispatcher on each of a node's service resources."""
        for resource in (
            node.cpu,
            node.disk.device,
            node.endpoint.egress,
            node.endpoint.ingress,
        ):
            if resource.fair is None:
                resource.fair = FairQueue(self)


def install_qos(cluster, config) -> None:
    """Install the tenant QoS board and per-node DRR dispatchers.

    No-op unless ``config.qos_enabled``; idempotent (both stores call it
    from their constructors, same pattern as admission control).  The
    board is remembered on the cluster so nodes added at runtime get the
    same dispatchers (see ``Cluster.add_node``).
    """
    if getattr(cluster, "qos", None) is not None:
        return
    if not getattr(config, "qos_enabled", False):
        return
    depth = config.tenant_queue_depth or config.admission_queue_depth or 0
    qos = TenantQos(
        cluster.sim,
        weights=config.tenant_weights,
        requests_per_s=config.tenant_requests_per_s,
        bytes_per_s=config.tenant_bytes_per_s,
        burst_s=config.quota_burst_s,
        policy=config.quota_policy,
        depth_limit=depth,
    )
    cluster.qos = qos
    for node in cluster.nodes:
        qos.attach(node)
