"""Measurement plumbing for the simulated cluster.

Two levels of accounting:

* :class:`QueryMetrics` — per-query latency breakdown in the paper's four
  categories (disk read, data processing, network overhead, other), plus
  bytes moved over the network on behalf of the query.
* :class:`ClusterMetrics` — cluster-wide totals: network traffic and
  per-node CPU busy time (drives the Fig 14d CPU-utilisation comparison).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

DISK = "disk"
CPU = "processing"
NETWORK = "network"
OTHER = "other"

CATEGORIES = (DISK, CPU, NETWORK, OTHER)


@dataclass
class QueryMetrics:
    """Accounting for one query's execution."""

    start_time: float = 0.0
    end_time: float = 0.0
    seconds: dict[str, float] = field(default_factory=lambda: {c: 0.0 for c in CATEGORIES})
    network_bytes: int = 0
    pushed_down_chunks: int = 0
    fallback_chunks: int = 0
    #: Wire messages sent on behalf of this query (loopback excluded).
    rpcs_issued: int = 0
    #: Per-op messages coalesced away by scatter-gather batching.
    rpcs_saved: int = 0
    #: Remote ops re-attempted after a failure (bounded retry with backoff).
    retries: int = 0
    #: Op timeouts observed (dropped request/reply, node dead mid-op).
    timeouts: int = 0
    #: Speculative duplicate reads: after ``StoreConfig.hedge_after_s``
    #: without a reply the executor launches the degraded-read fallback in
    #: parallel and takes whichever finishes first.
    hedges: int = 0
    #: Chunk/block reads answered by erasure-code reconstruction instead
    #: of the node that holds the data (dead or suspect node).
    degraded_reads: int = 0
    #: End-to-end checksum mismatches detected at the reader (direct
    #: reads and reconstructed bytes alike); each one was answered by
    #: reconstruction instead of surfacing bad bytes.
    checksum_failures: int = 0
    #: Requests evicted from an admission queue to make room for
    #: higher-priority work (shed-lowest-priority policy).
    requests_shed: int = 0
    #: Requests refused at the door of a full admission queue.
    requests_rejected: int = 0
    #: Operations abandoned because their deadline expired (counted once
    #: per failed top-level op, at the point the typed error surfaces).
    deadline_exceeded: int = 0
    #: Circuit-breaker trips attributed to this query's failed ops.
    breaker_open_total: int = 0
    #: 1 when the query returned a typed PartialResult (shed chunks
    #: dropped under allow_partial_results) instead of failing.
    partial_results: int = 0
    #: In-flight child processes cancelled when this query's deadline or
    #: parent op died (none left orphaned).
    cancellations: int = 0
    #: Individual refused remote-op attempts (sheds + rejects, counted
    #: once per attempt).  ``requests_shed``/``requests_rejected`` above
    #: count once per logical request — a refused op that is retried and
    #: refused again bumps only this counter the second time.
    refusal_attempts: int = 0
    #: Requests refused at the frontend because the tenant's token-bucket
    #: quota ran dry (typed QuotaExceeded under quota_policy="reject").
    quota_exceeded: int = 0
    #: Requests demoted to background priority instead of refused
    #: (quota_policy="demote").
    quota_demotions: int = 0
    #: QoS tenant id this request was admitted under; ``None`` means the
    #: request is untenanted and takes every legacy code path.
    tenant: str | None = None
    #: Admission-control lane: FOREGROUND (1) for client queries,
    #: BACKGROUND (0) for repair/scrub and injected background bursts.
    #: ``None`` would mean exempt, but per-query traffic always has a
    #: lane.
    priority: int = 1
    #: The operation's Deadline (set by the store when
    #: StoreConfig.default_deadline_s > 0), carried here so every layer
    #: the metrics already thread through can check it.
    deadline: object | None = None
    #: Root span id of this query's trace (stamped by ``traced`` when a
    #: tracer is installed); lets registry histogram exemplars link a
    #: tail latency observation back to the trace that produced it.
    trace_id: int | None = None

    @property
    def latency(self) -> float:
        return self.end_time - self.start_time

    def add(self, category: str, seconds: float) -> None:
        if category not in self.seconds:
            raise KeyError(f"unknown category {category!r}; known: {CATEGORIES}")
        self.seconds[category] += seconds

    def breakdown_fractions(self) -> dict[str, float]:
        """Each category's share of the total accounted busy time.

        Work on parallel branches is summed, so fractions describe where
        effort went — the same normalisation the paper's stacked bars use.
        """
        total = sum(self.seconds.values())
        if total <= 0:
            return {c: 0.0 for c in CATEGORIES}
        return {c: v / total for c, v in self.seconds.items()}


@dataclass
class ClusterMetrics:
    """Totals across the whole simulation run."""

    network_bytes: int = 0
    disk_bytes: int = 0
    rpcs_issued: int = 0
    rpcs_saved: int = 0
    retries: int = 0
    timeouts: int = 0
    hedges: int = 0
    degraded_reads: int = 0
    #: Checksum mismatches detected across queries plus any caught by
    #: repair/scrub verification (silent-corruption detection coverage).
    checksum_failures: int = 0
    #: Overload-protection totals, summed from recorded queries (the
    #: CircuitBreakerBoard's ``opens`` list is the per-node view).
    requests_shed: int = 0
    requests_rejected: int = 0
    deadline_exceeded: int = 0
    breaker_open_total: int = 0
    partial_results: int = 0
    cancellations: int = 0
    refusal_attempts: int = 0
    quota_exceeded: int = 0
    quota_demotions: int = 0
    #: Per-tenant roll-up: tenant id -> counter dict (queries, sheds,
    #: rejects, deadline misses, quota refusals/demotions, goodput).
    #: Only tenanted queries land here; untenanted runs leave it empty.
    tenants: dict = field(default_factory=dict)
    #: Repair traffic is accounted separately from query traffic: these
    #: bytes never enter ``network_bytes`` (which only accumulates via
    #: :meth:`record_query`), so availability experiments can report the
    #: cost of background repair on its own axis.
    repair_bytes: int = 0
    blocks_repaired: int = 0
    repair_seconds: float = 0.0
    #: Rebalance (membership-migration) traffic, accounted on its own
    #: axis exactly like repair: never mixed into ``network_bytes`` or
    #: ``repair_bytes``, so topology-churn experiments can report the
    #: cost of moving data to its ring position separately from both
    #: query traffic and failure repair.
    rebalance_bytes: int = 0
    blocks_migrated: int = 0
    rebalance_seconds: float = 0.0
    #: Anti-entropy read-repair traffic: stripes re-repaired because a
    #: foreground read had to reconstruct data.  Accounted on its own
    #: axis (never mixed into ``repair_bytes``) so experiments can
    #: report how much healing foreground traffic triggered.
    read_repair_bytes: int = 0
    blocks_read_repaired: int = 0
    read_repair_seconds: float = 0.0
    #: Metadata republishes refused because the coordinator could not
    #: reach a majority of the object's meta-replica holders (typed
    #: QuorumLost; each is a split-brain install that did NOT happen).
    quorum_lost_total: int = 0
    queries: list[QueryMetrics] = field(default_factory=list)
    #: Optional sink with ``record_query(qm)`` / ``record_repair(...)``
    #: methods (duck-typed so this module stays dependency-free); the
    #: stores install a :class:`repro.obs.MetricsRegistry` here when
    #: ``StoreConfig.metrics_registry_enabled`` is set.
    registry: object | None = None

    def record_query(self, qm: QueryMetrics) -> None:
        self.queries.append(qm)
        self.network_bytes += qm.network_bytes
        self.rpcs_issued += qm.rpcs_issued
        self.rpcs_saved += qm.rpcs_saved
        self.retries += qm.retries
        self.timeouts += qm.timeouts
        self.hedges += qm.hedges
        self.degraded_reads += qm.degraded_reads
        self.checksum_failures += qm.checksum_failures
        self.requests_shed += qm.requests_shed
        self.requests_rejected += qm.requests_rejected
        self.deadline_exceeded += qm.deadline_exceeded
        self.breaker_open_total += qm.breaker_open_total
        self.partial_results += qm.partial_results
        self.cancellations += qm.cancellations
        self.refusal_attempts += qm.refusal_attempts
        self.quota_exceeded += qm.quota_exceeded
        self.quota_demotions += qm.quota_demotions
        if qm.tenant is not None:
            t = self.tenants.get(qm.tenant)
            if t is None:
                t = self.tenants[qm.tenant] = {
                    "queries": 0,
                    "requests_shed": 0,
                    "requests_rejected": 0,
                    "deadline_exceeded": 0,
                    "quota_exceeded": 0,
                    "quota_demotions": 0,
                    "goodput": 0,
                    "latencies": [],
                }
            t["queries"] += 1
            t["requests_shed"] += qm.requests_shed
            t["requests_rejected"] += qm.requests_rejected
            t["deadline_exceeded"] += qm.deadline_exceeded
            t["quota_exceeded"] += qm.quota_exceeded
            t["quota_demotions"] += qm.quota_demotions
            refused = (
                qm.requests_shed
                + qm.requests_rejected
                + qm.deadline_exceeded
                + qm.quota_exceeded
            )
            if refused == 0:
                t["goodput"] += 1
                t["latencies"].append(qm.latency)
        if self.registry is not None:
            self.registry.record_query(qm)

    def record_repair(self, nbytes: int, blocks: int, seconds: float) -> None:
        """Account one repair run's traffic, separate from query traffic."""
        self.repair_bytes += nbytes
        self.blocks_repaired += blocks
        self.repair_seconds += seconds
        if self.registry is not None:
            self.registry.record_repair(nbytes, blocks, seconds)

    def record_rebalance(self, nbytes: int, blocks: int, seconds: float) -> None:
        """Account one rebalance run's traffic (separate from repair)."""
        self.rebalance_bytes += nbytes
        self.blocks_migrated += blocks
        self.rebalance_seconds += seconds
        if self.registry is not None:
            # getattr-guarded: duck-typed sinks predating the rebalance
            # counters keep working.
            record = getattr(self.registry, "record_rebalance", None)
            if record is not None:
                record(nbytes, blocks, seconds)

    def record_read_repair(self, nbytes: int, blocks: int, seconds: float) -> None:
        """Account one read-repair run's traffic (separate from scrub repair)."""
        self.read_repair_bytes += nbytes
        self.blocks_read_repaired += blocks
        self.read_repair_seconds += seconds
        if self.registry is not None:
            # getattr-guarded like record_rebalance: older duck-typed
            # sinks without the read-repair counters keep working.
            record = getattr(self.registry, "record_read_repair", None)
            if record is not None:
                record(nbytes, blocks, seconds)

    def latencies(self) -> list[float]:
        return [q.latency for q in self.queries]


def percentile(values: list[float], pct: float) -> float:
    """Nearest-rank percentile (pct in [0, 100]) of a non-empty list."""
    if not values:
        raise ValueError("percentile of empty list")
    ordered = sorted(values)
    if pct <= 0:
        return ordered[0]
    if pct >= 100:
        return ordered[-1]
    # Nearest-rank definition: the smallest rank r with r/n >= pct/100,
    # i.e. ceil(pct/100 * n).  (A previous version added 0.5 and round()ed,
    # double-rounding p50 of even-length lists up a whole element.)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]
