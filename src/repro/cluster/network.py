"""Network model: per-node full-duplex pipes plus RPC overhead.

Each node owns an egress pipe and an ingress pipe, each a FIFO resource
serialising transfers at the configured bandwidth (store-and-forward).
A transfer of ``nbytes`` from A to B:

1. waits for A's egress pipe, then B's ingress pipe (FIFO queueing is what
   produces tail latency under concurrent clients);
2. occupies both for ``nbytes / bandwidth`` seconds;
3. pays half an RTT of propagation delay plus a fixed per-RPC overhead.

Transfers between a node and itself are free (local loopback), matching
how the paper's coordinator processes locally-resident chunks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import metrics as m
from repro.cluster.simcore import QueueFull, Resource, Simulator

#: Detached network-processing charges ride the background lane so they
#: can be shed before foreground query work (import kept local to avoid
#: a cycle with repro.cluster.overload).
BACKGROUND_PRIORITY = 0


@dataclass
class NetworkConfig:
    """Link parameters.

    Defaults mirror the paper's testbed after `wondershaper`: 25 Gbps per
    direction, sub-millisecond datacenter RTT, and a fixed per-RPC cost
    covering serialisation and kernel overheads.
    """

    bandwidth_bps: float = 25e9 / 8  # 25 Gbps expressed in bytes/sec
    rtt_s: float = 0.0002
    rpc_overhead_s: float = 0.0003
    #: CPU cost of moving bytes (TCP/RPC processing), per core.  Charged
    #: as busy time on each endpoint's CPU — this is why the baseline,
    #: which moves far more data, burns more CPU at equal load (Fig 14d).
    cpu_bps: float = 2.0e9


class NetworkEndpoint:
    """One node's attachment to the network: an egress and an ingress pipe.

    ``cpu`` optionally references the owning node's CPU resource so that
    network processing cost can be charged to it (client endpoints have
    no CPU of interest).
    """

    def __init__(self, sim: Simulator, name: str, cpu: Resource | None = None) -> None:
        self.name = name
        self.egress = Resource(sim, capacity=1)
        self.ingress = Resource(sim, capacity=1)
        self.cpu = cpu
        #: Serialisation-time multiplier; raised above 1.0 by fault
        #: injection to model a degraded NIC (slow-node fault).
        self.slow_factor = 1.0
        #: Independent fail-slow multiplier (gray-failure fault plane).
        #: Composes multiplicatively with ``slow_factor`` so an ordinary
        #: slow window ending cannot clear a concurrent gray state.
        self.gray_factor = 1.0


@dataclass
class LinkState:
    """Fault state of one *directed* link (src endpoint -> dst endpoint).

    All three axes compose with the node-scoped fault planes: a severed
    link loses every RPC crossing it (in either direction an RPC needs —
    requests one way, replies the other), ``drop_rate`` loses a seeded
    fraction, and ``extra_latency_s`` is added to each transfer's fixed
    latency (asymmetric-link degradation: only this direction pays).
    """

    drop_rate: float = 0.0
    extra_latency_s: float = 0.0
    severed: bool = False

    @property
    def clear(self) -> bool:
        return not self.severed and self.drop_rate <= 0.0 and self.extra_latency_s <= 0.0


class Network:
    """The shared fabric connecting all endpoints."""

    def __init__(self, sim: Simulator, config: NetworkConfig) -> None:
        self.sim = sim
        self.config = config
        #: Directed per-link fault matrix keyed by (src name, dst name).
        #: Empty in fault-free runs — the transfer path only consults it
        #: when non-empty, so default-knob runs stay bit-identical.
        self.links: dict[tuple[str, str], LinkState] = {}
        self.total_bytes = 0
        #: Messages actually put on the wire (loopback excluded).
        self.rpcs_issued = 0
        #: Per-op messages coalesced away by batching: a batched request
        #: carrying ``p`` op payloads counts as 1 issued and ``p - 1``
        #: saved, and every streamed reply riding an open exchange
        #: counts as 1 saved.
        self.rpcs_saved = 0

    def set_bandwidth_gbps(self, gbps: float) -> None:
        """Adjust link bandwidth (the Fig 14c bandwidth sweep knob)."""
        self.config.bandwidth_bps = gbps * 1e9 / 8

    # -- per-link fault plane ------------------------------------------------

    def set_link(
        self,
        src_name: str,
        dst_name: str,
        drop_rate: float = 0.0,
        extra_latency_s: float = 0.0,
        severed: bool = False,
    ) -> None:
        """Install (or clear) fault state on the directed src->dst link."""
        key = (src_name, dst_name)
        state = LinkState(
            drop_rate=drop_rate, extra_latency_s=extra_latency_s, severed=severed
        )
        if state.clear:
            self.links.pop(key, None)
        else:
            self.links[key] = state

    def clear_link(self, src_name: str, dst_name: str) -> None:
        self.links.pop((src_name, dst_name), None)

    def link(self, src_name: str, dst_name: str) -> LinkState | None:
        """The directed link's fault state, or None when healthy."""
        if not self.links:
            return None
        return self.links.get((src_name, dst_name))

    def link_severed(self, a_name: str, b_name: str) -> bool:
        """True when an RPC between the two endpoints cannot complete:
        a round trip needs both directions, so either severed direction
        kills it."""
        if not self.links:
            return False
        fwd = self.links.get((a_name, b_name))
        rev = self.links.get((b_name, a_name))
        return (fwd is not None and fwd.severed) or (rev is not None and rev.severed)

    def severed_link_count(self) -> int:
        """Currently-severed directed links (telemetry gauge)."""
        return sum(1 for state in self.links.values() if state.severed)

    def transfer(
        self,
        src: NetworkEndpoint,
        dst: NetworkEndpoint,
        nbytes: int,
        query: m.QueryMetrics | None = None,
    ):
        """Process: move ``nbytes`` from ``src`` to ``dst``.

        Charges the bytes and elapsed time to ``query`` when given.  A
        zero-byte transfer still pays the RPC overhead (it is a message).
        """
        if nbytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        yield from self.batch_transfer(src, dst, (nbytes,), query)

    def batch_transfer(
        self,
        src: NetworkEndpoint,
        dst: NetworkEndpoint,
        sizes,
        query: m.QueryMetrics | None = None,
    ):
        """Process: one coalesced RPC carrying ``len(sizes)`` op payloads.

        The scatter-gather batching primitive: all payloads still
        serialise through the FIFO pipes at link bandwidth (so queueing
        and tail-latency shape are preserved), but the fixed per-RPC
        overhead and the half-RTT propagation delay are paid *once* for
        the whole batch instead of once per op.  ``sizes`` lists each
        op's payload bytes; byte accounting is the sum, so batched and
        unbatched executions move identical traffic.
        """
        sizes = list(sizes)
        if not sizes:
            return
        if any(s < 0 for s in sizes):
            raise ValueError("cannot transfer a negative number of bytes")
        nbytes = sum(sizes)
        start = self.sim.now
        if src is dst:
            # Loopback: no pipes, no RTT, no traffic accounting.
            return
        self.rpcs_issued += 1
        self.rpcs_saved += len(sizes) - 1
        if query is not None:
            query.rpcs_issued += 1
            query.rpcs_saved += len(sizes) - 1
        yield from self._move(
            src,
            dst,
            nbytes,
            self.config.rtt_s / 2 + self.config.rpc_overhead_s,
            query,
            start,
        )

    def stream_transfer(
        self,
        src: NetworkEndpoint,
        dst: NetworkEndpoint,
        nbytes: int,
        query: m.QueryMetrics | None = None,
        half_rtt: bool = False,
    ):
        """Process: a per-op reply riding an already-opened batched exchange.

        The payload still serialises through the FIFO pipes at link
        bandwidth, but no new RPC is set up: the message pays no
        per-RPC overhead (and propagation only when ``half_rtt`` is set,
        for the first reply of an exchange).  Counts as one saved RPC —
        unbatched, this reply would have been its own round trip.
        """
        if nbytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        start = self.sim.now
        if src is dst:
            return
        self.rpcs_saved += 1
        if query is not None:
            query.rpcs_saved += 1
        yield from self._move(
            src, dst, nbytes, self.config.rtt_s / 2 if half_rtt else 0.0, query, start
        )

    def _move(self, src, dst, nbytes, latency_s, query, start):
        """Occupy the pipes for ``nbytes`` plus ``latency_s`` of fixed cost.

        Raises :class:`~repro.cluster.simcore.QueueFull` when either pipe
        is admission-bounded and refuses the request; internal traffic
        (``query=None``) is exempt.
        """
        tracer = self.sim.tracer
        span = (
            tracer.begin("net.transfer", cat="device", src=src.name, dst=dst.name,
                         bytes=nbytes)
            if tracer is not None
            else None
        )
        priority = None if query is None else query.priority
        tenant = None if query is None else query.tenant
        cost = float(max(nbytes, 1))
        try:
            with (yield from src.egress.acquire(priority, tenant=tenant, cost=cost)):
                with (yield from dst.ingress.acquire(priority, tenant=tenant, cost=cost)):
                    slow = max(
                        src.slow_factor * src.gray_factor,
                        dst.slow_factor * dst.gray_factor,
                    )
                    if self.links:
                        # Asymmetric-link degradation: only the directed
                        # src->dst state adds latency to this transfer.
                        state = self.links.get((src.name, dst.name))
                        if state is not None:
                            latency_s += state.extra_latency_s
                    duration = nbytes / self.config.bandwidth_bps * slow + latency_s
                    yield self.sim.timeout(duration)
        except QueueFull:
            if span is not None:
                tracer.finish(span, rejected=True)
            raise
        if span is not None:
            tracer.finish(span)
        self.total_bytes += nbytes
        # Network processing burns CPU at both endpoints, overlapped with
        # the transfer itself (busy time for utilisation accounting; it
        # contends with other CPU work but does not extend this transfer).
        if nbytes > 0 and self.config.cpu_bps > 0:
            cpu_seconds = nbytes / self.config.cpu_bps
            for endpoint in (src, dst):
                if endpoint.cpu is not None:
                    self.sim.process(_occupy(self.sim, endpoint.cpu, cpu_seconds))
        if query is not None:
            query.network_bytes += nbytes
            query.add(m.NETWORK, self.sim.now - start)


def _occupy(sim: Simulator, cpu: Resource, seconds: float):
    """Occupy one CPU core for ``seconds`` (network processing work).

    Accounting-only: if the CPU queue is admission-bounded and full, the
    busy-time charge is dropped rather than failing the transfer that
    spawned this detached process.
    """
    try:
        with (yield from cpu.acquire(BACKGROUND_PRIORITY)):
            yield sim.timeout(seconds)
    except QueueFull:
        pass
