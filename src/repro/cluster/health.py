"""Per-node failure detection shared by every store on a cluster.

The hot path (``repro.core.scatter_gather``) cannot afford to keep
retrying a node that is clearly gone: after a few consecutive failed ops
the node is *suspect* and new ops route straight to degraded-read
reconstruction instead of paying the timeout again.  The tracker is
owned by the :class:`~repro.cluster.cluster.Cluster` so Fusion, its
fixed-block fallback store, and the standalone baseline all share one
view of node health, and it subscribes to the cluster's liveness
notifications so an explicit ``fail_node``/``restore_node`` updates it
without callers polling ``node.alive``.
"""

from __future__ import annotations


class NodeHealthTracker:
    """Counts per-node op failures and derives a usable/suspect verdict.

    * ``down`` mirrors the cluster's liveness flags (updated via the
      liveness-listener callback, never polled).
    * ``consecutive_failures`` counts failed remote ops since the last
      success; at ``suspicion_threshold`` the node becomes *suspect* and
      :meth:`usable` turns false until a success or a restore resets it.
    """

    def __init__(self, num_nodes: int, suspicion_threshold: int = 3) -> None:
        if suspicion_threshold < 1:
            raise ValueError("suspicion threshold must be >= 1")
        self.suspicion_threshold = suspicion_threshold
        self.down = [False] * num_nodes
        self.consecutive_failures = [0] * num_nodes
        self.total_failures = [0] * num_nodes
        self.total_successes = [0] * num_nodes

    def ensure_size(self, num_nodes: int) -> None:
        """Grow the per-node state for nodes that joined at runtime
        (new nodes start healthy with clean counters)."""
        while len(self.down) < num_nodes:
            self.down.append(False)
            self.consecutive_failures.append(0)
            self.total_failures.append(0)
            self.total_successes.append(0)

    # -- liveness (pushed by Cluster.fail_node / restore_node) ---------------

    def on_liveness(self, node_id: int, alive: bool) -> None:
        self.down[node_id] = not alive
        if alive:
            # A restored node starts with a clean slate: stale suspicion
            # from its dead period must not divert ops from it forever.
            self.consecutive_failures[node_id] = 0

    # -- op outcomes (recorded by the scatter-gather executor) ---------------

    def record_failure(self, node_id: int) -> None:
        self.consecutive_failures[node_id] += 1
        self.total_failures[node_id] += 1

    def record_success(self, node_id: int) -> None:
        self.consecutive_failures[node_id] = 0
        self.total_successes[node_id] += 1

    # -- verdicts -------------------------------------------------------------

    def is_suspect(self, node_id: int) -> bool:
        return self.consecutive_failures[node_id] >= self.suspicion_threshold

    def usable(self, node_id: int) -> bool:
        """True when ops should still be sent to the node."""
        return not self.down[node_id] and not self.is_suspect(node_id)

    def snapshot(self) -> dict[int, dict]:
        return {
            nid: {
                "down": self.down[nid],
                "suspect": self.is_suspect(nid),
                "consecutive_failures": self.consecutive_failures[nid],
                "total_failures": self.total_failures[nid],
                "total_successes": self.total_successes[nid],
            }
            for nid in range(len(self.down))
        }
