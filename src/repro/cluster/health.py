"""Per-node failure detection shared by every store on a cluster.

The hot path (``repro.core.scatter_gather``) cannot afford to keep
retrying a node that is clearly gone: after a few consecutive failed ops
the node is *suspect* and new ops route straight to degraded-read
reconstruction instead of paying the timeout again.  The tracker is
owned by the :class:`~repro.cluster.cluster.Cluster` so Fusion, its
fixed-block fallback store, and the standalone baseline all share one
view of node health, and it subscribes to the cluster's liveness
notifications so an explicit ``fail_node``/``restore_node`` updates it
without callers polling ``node.alive``.

Binary up/suspect misses the *gray* failure mode: a fail-slow node
answers every op (so it never trips suspicion) but serves them an order
of magnitude slower, and one such node dominates the tail of every
query that touches it.  The tracker therefore also keeps a per-node
EWMA of successful-op latency and scores it against the cluster median,
yielding a three-tier verdict per node:

* **usable** — send it foreground ops;
* **greylisted** — latency EWMA exceeds ``greylist_factor`` times the
  cluster median: deprioritized for foreground reads and hedge targets,
  but still eligible for background repair/rebalance traffic (and still
  counted alive), so a fail-slow node degrades gracefully instead of
  flapping between fully-trusted and fully-shunned;
* **suspect/down** — consecutive failures or liveness say it is gone.

Greylisting is armed by ``greylist_factor > 1`` (wired from
``StoreConfig.greylist_latency_factor``); at the default 0 no latency
verdict is ever rendered and the tracker behaves exactly like the
binary original.
"""

from __future__ import annotations

#: Tier names in escalation order; :meth:`NodeHealthTracker.tier_value`
#: maps them to these indexes for gauge export.
TIERS = ("usable", "greylisted", "suspect", "down")

#: EWMA smoothing for per-node op latency: high enough that a node going
#: gray is noticed within ~a dozen ops, low enough that one queueing
#: spike does not greylist a healthy node.
LATENCY_EWMA_ALPHA = 0.25

#: Successful ops a node must have served before its EWMA is trusted
#: for a greylist verdict (and before it contributes to the median).
GREYLIST_MIN_SAMPLES = 8


class NodeHealthTracker:
    """Per-node op outcomes folded into a usable/greylisted/suspect verdict.

    * ``down`` mirrors the cluster's liveness flags (updated via the
      liveness-listener callback, never polled).
    * ``consecutive_failures`` counts failed remote ops since the last
      success; at ``suspicion_threshold`` the node becomes *suspect* and
      :meth:`usable` turns false until a success or a restore resets it.
    * ``latency_ewma`` tracks successful-op service latency; when a
      node's EWMA exceeds ``greylist_factor`` times the cluster median
      (armed by ``greylist_factor > 1``) the node is *greylisted* — see
      :meth:`is_greylisted`.  Tier flips invoke ``on_tier_change``
      callbacks (the cluster wires tracer instants through this).
    """

    def __init__(
        self,
        num_nodes: int,
        suspicion_threshold: int = 3,
        greylist_factor: float = 0.0,
    ) -> None:
        if suspicion_threshold < 1:
            raise ValueError("suspicion threshold must be >= 1")
        self.suspicion_threshold = suspicion_threshold
        #: Latency multiple over the cluster median that greylists a
        #: node; values <= 1 disable latency verdicts entirely.
        self.greylist_factor = greylist_factor
        self.down = [False] * num_nodes
        self.consecutive_failures = [0] * num_nodes
        self.total_failures = [0] * num_nodes
        self.total_successes = [0] * num_nodes
        #: EWMA of successful-op latency per node (0.0 = no samples yet).
        self.latency_ewma = [0.0] * num_nodes
        self.latency_samples = [0] * num_nodes
        self._greylisted = [False] * num_nodes
        #: ``callback(node_id, greylisted: bool)`` invoked on each flip.
        self.on_tier_change: list = []

    def ensure_size(self, num_nodes: int) -> None:
        """Grow the per-node state for nodes that joined at runtime
        (new nodes start healthy with clean counters)."""
        while len(self.down) < num_nodes:
            self.down.append(False)
            self.consecutive_failures.append(0)
            self.total_failures.append(0)
            self.total_successes.append(0)
            self.latency_ewma.append(0.0)
            self.latency_samples.append(0)
            self._greylisted.append(False)

    # -- liveness (pushed by Cluster.fail_node / restore_node) ---------------

    def on_liveness(self, node_id: int, alive: bool) -> None:
        self.down[node_id] = not alive
        if alive:
            # A restored node starts with a clean slate: stale suspicion
            # (and a stale latency profile — it may have been rebooted
            # onto healthy hardware) must not divert ops from it forever.
            self.consecutive_failures[node_id] = 0
            self.latency_ewma[node_id] = 0.0
            self.latency_samples[node_id] = 0
            self._set_greylisted(node_id, False)

    # -- op outcomes (recorded by the scatter-gather executor) ---------------

    def record_failure(self, node_id: int) -> None:
        self.consecutive_failures[node_id] += 1
        self.total_failures[node_id] += 1

    def record_success(self, node_id: int, elapsed: float | None = None) -> None:
        self.consecutive_failures[node_id] = 0
        self.total_successes[node_id] += 1
        if elapsed is not None:
            self.record_latency(node_id, elapsed)

    def record_latency(self, node_id: int, elapsed: float) -> None:
        """Fold one successful op's service latency into the node's EWMA
        and re-render its greylist verdict (pure bookkeeping — never
        schedules events, so recording is free for bit-identity)."""
        prev = self.latency_ewma[node_id]
        if self.latency_samples[node_id] == 0:
            self.latency_ewma[node_id] = elapsed
        else:
            self.latency_ewma[node_id] = (
                LATENCY_EWMA_ALPHA * elapsed + (1.0 - LATENCY_EWMA_ALPHA) * prev
            )
        self.latency_samples[node_id] += 1
        if self.greylist_factor > 1.0:
            self._set_greylisted(node_id, self._latency_outlier(node_id))

    # -- gray-failure scoring -------------------------------------------------

    def median_latency(self) -> float:
        """Cluster-median latency EWMA over trusted, non-down nodes
        (0.0 until enough nodes have served enough ops)."""
        samples = sorted(
            self.latency_ewma[nid]
            for nid in range(len(self.down))
            if not self.down[nid] and self.latency_samples[nid] >= GREYLIST_MIN_SAMPLES
        )
        if not samples:
            return 0.0
        mid = len(samples) // 2
        if len(samples) % 2:
            return samples[mid]
        return (samples[mid - 1] + samples[mid]) / 2.0

    def _latency_outlier(self, node_id: int) -> bool:
        if self.latency_samples[node_id] < GREYLIST_MIN_SAMPLES:
            return False
        median = self.median_latency()
        if median <= 0.0:
            return False
        return self.latency_ewma[node_id] > self.greylist_factor * median

    def _set_greylisted(self, node_id: int, value: bool) -> None:
        if self._greylisted[node_id] == value:
            return
        self._greylisted[node_id] = value
        for callback in self.on_tier_change:
            callback(node_id, value)

    # -- verdicts -------------------------------------------------------------

    def is_suspect(self, node_id: int) -> bool:
        return self.consecutive_failures[node_id] >= self.suspicion_threshold

    def is_greylisted(self, node_id: int) -> bool:
        """Fail-slow verdict: latency EWMA far above the cluster median.

        Subordinate to the harder verdicts — a down or suspect node is
        not *also* greylisted.  Always False when greylisting is unarmed
        (``greylist_factor <= 1``), keeping default-knob routing
        bit-identical to the binary tracker.
        """
        if self.greylist_factor <= 1.0:
            return False
        return (
            self._greylisted[node_id]
            and not self.down[node_id]
            and not self.is_suspect(node_id)
        )

    def usable(self, node_id: int) -> bool:
        """True when ops should still be sent to the node.

        Greylisted nodes stay usable here on purpose: they *answer*,
        just slowly — foreground source selection deprioritizes them
        (see the stores), but liveness-grade routing must not shun them.
        """
        return not self.down[node_id] and not self.is_suspect(node_id)

    def tier(self, node_id: int) -> str:
        """Three-tier verdict (plus down) for routing and telemetry."""
        if self.down[node_id]:
            return "down"
        if self.is_suspect(node_id):
            return "suspect"
        if self.is_greylisted(node_id):
            return "greylisted"
        return "usable"

    def tier_value(self, node_id: int) -> int:
        """The tier as a gauge value (index into :data:`TIERS`)."""
        return TIERS.index(self.tier(node_id))

    def snapshot(self) -> dict[int, dict]:
        return {
            nid: {
                "down": self.down[nid],
                "suspect": self.is_suspect(nid),
                "greylisted": self.is_greylisted(nid),
                "tier": self.tier(nid),
                "consecutive_failures": self.consecutive_failures[nid],
                "total_failures": self.total_failures[nid],
                "total_successes": self.total_successes[nid],
                "latency_ewma_s": self.latency_ewma[nid],
            }
            for nid in range(len(self.down))
        }
