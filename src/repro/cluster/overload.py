"""Overload protection: deadlines, cancellation scopes, circuit breakers.

The Cost Equation (paper §4) decides *where* work runs under load, but a
store also needs defenses for when offered load exceeds capacity — else
retries and hedges amplify traffic exactly when nodes saturate (the
metastable-failure shape).  This module holds the mechanism layer:

* :class:`Deadline` / :class:`DeadlineExceeded` — a per-operation budget
  on the simulated clock, checked cooperatively at every scatter-gather
  hop and inside per-chunk evaluation.  Checks are pure clock reads; no
  timeline events are scheduled, so carrying a deadline that never
  expires leaves the scheduled-event stream bit-identical.
* :class:`CancelScope` — groups the processes fanned out for one
  operation so that when the deadline (or the parent op) dies, every
  in-flight child is cancelled rather than orphaned.
* :class:`CircuitBreakerBoard` — per-node closed→open→half-open state
  machines layered on :class:`~repro.cluster.health.NodeHealthTracker`:
  they trip on queue-reject/timeout *rates* inside a sliding window,
  route traffic around open nodes, and probe with a single half-open
  trial before closing again.
* :class:`PartialResult` — the typed answer a scan query returns when
  ``allow_partial_results`` let the coordinator shed chunks instead of
  failing the whole query.

Admission control itself (bounded queues, reject/shed policies) lives on
:class:`repro.cluster.simcore.Resource`; :func:`install_admission_control`
applies a :class:`~repro.core.config.StoreConfig`'s knobs to every
storage-node service loop (CPU, disk, NIC ingress/egress).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generator

from repro.cluster.simcore import Process, QueueFull, Simulator

__all__ = [
    "ADMISSION_POLICIES",
    "BACKGROUND_PRIORITY",
    "FOREGROUND_PRIORITY",
    "CancelScope",
    "CircuitBreakerBoard",
    "Deadline",
    "DeadlineExceeded",
    "PartialResult",
    "QueueFull",
    "arm_deadline",
    "check_deadline",
    "fail_query",
    "install_admission_control",
    "install_circuit_breakers",
]

#: Priority lanes for admission-controlled service queues.  Foreground
#: query traffic outranks background work (repair, scrubbing, injected
#: background bursts), so under the ``shed-lowest-priority`` policy the
#: background lane is evicted first.
FOREGROUND_PRIORITY = 1
BACKGROUND_PRIORITY = 0

ADMISSION_POLICIES = ("reject", "shed-lowest-priority", "block")


class DeadlineExceeded(RuntimeError):
    """An operation ran past its deadline and was abandoned."""


class Deadline:
    """An absolute expiry time on the simulated clock.

    Pure bookkeeping: checking a deadline reads the clock and raises;
    nothing is ever scheduled, so un-expired deadlines cannot perturb
    the event stream.
    """

    __slots__ = ("sim", "expires_at")

    def __init__(self, sim: Simulator, timeout_s: float) -> None:
        self.sim = sim
        self.expires_at = sim.now + timeout_s

    @property
    def remaining(self) -> float:
        return self.expires_at - self.sim.now

    @property
    def expired(self) -> bool:
        return self.sim.now > self.expires_at

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            suffix = f" at {where}" if where else ""
            raise DeadlineExceeded(
                f"deadline exceeded{suffix} "
                f"({self.sim.now - self.expires_at:.6f}s over budget)"
            )

    @staticmethod
    def from_config(sim: Simulator, config) -> "Deadline | None":
        """The operation deadline for ``config``, or ``None`` when off."""
        if config is None or config.default_deadline_s <= 0:
            return None
        return Deadline(sim, config.default_deadline_s)


def arm_deadline(sim: Simulator, config, metrics) -> None:
    """Attach the configured operation deadline to a request's metrics.

    A deadline already present wins: a parent op's remaining budget
    propagates to delegated work (e.g. FusionStore handing a query to
    its fixed-block fallback store) instead of being reset.
    """
    if metrics is not None and metrics.deadline is None:
        metrics.deadline = Deadline.from_config(sim, config)


def check_deadline(metrics, where: str = "chunk") -> None:
    """Cooperative deadline check inside per-chunk evaluation bodies."""
    if metrics is not None and metrics.deadline is not None:
        metrics.deadline.check(where)


def fail_query(
    cluster,
    metrics,
    *,
    deadline: bool = False,
    shed: bool = False,
    quota: bool = False,
) -> None:
    """Account a query killed by a typed overload failure.

    Stamps the end time and records the metrics object so the failure's
    counters (deadline_exceeded / requests_shed / requests_rejected /
    quota_exceeded) reach the cluster aggregate even though the query
    produced no result.  ``quota`` refusals were already counted by
    ``TenantQos.admit`` on the metrics object, so only the recording
    happens here.
    """
    if metrics is None:
        return
    if quota:
        pass
    elif deadline:
        metrics.deadline_exceeded += 1
    elif shed:
        metrics.requests_shed += 1
    else:
        metrics.requests_rejected += 1
    metrics.end_time = cluster.sim.now
    cluster.metrics.record_query(metrics)


class CancelScope:
    """The set of child processes fanned out for one operation.

    The owner spawns children through :meth:`spawn`; if the operation
    dies (deadline, parent failure) it calls :meth:`cancel` and every
    still-pending child is stopped — resources released, queue slots
    withdrawn — instead of being orphaned.  ``expired`` is a bare signal
    event: the first child that observes a blown deadline fires it, so
    the owner (racing it against the round barrier with ``any_of``) can
    cancel siblings promptly rather than waiting for the full barrier.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.expired = sim.event()
        self._noted = False
        self._procs: list[Process] = []

    def spawn(self, gen: Generator) -> Process:
        proc = self.sim.process(gen)
        self._procs.append(proc)
        return proc

    def note_deadline(self) -> None:
        """Signal the scope owner that a child hit the deadline.

        The firing is deferred through the event heap (same timestamp)
        rather than run synchronously: the noting child is mid-step, and
        resuming the owner inside its frame would make the owner's
        cancel/raise unwind through the child.  Scheduling here cannot
        perturb no-trip runs — by construction it only happens once a
        deadline has actually expired, i.e. after the run diverged.
        """
        if self._noted or self.expired.fired:
            return
        self._noted = True

        def fire(_arg) -> None:
            if not self.expired.fired:
                self.expired.succeed()

        self.sim._schedule(self.sim.now, fire, None)

    def cancel(self) -> int:
        """Cancel every pending child; returns how many were stopped."""
        cancelled = 0
        for proc in self._procs:
            if not proc.fired and proc is not self.sim.active_process:
                proc.cancel()
                cancelled += 1
        self._procs.clear()
        return cancelled


@dataclass
class PartialResult:
    """A scan answer with chunks missing, returned instead of an error.

    Produced only when ``StoreConfig.allow_partial_results`` is on and
    the query carries no aggregates or GROUP BY (dropping rows from
    those would be silently wrong rather than explicitly partial).
    ``result`` holds the rows that were assembled; ``shed_chunks``
    counts the remote ops that were shed; ``reason`` says why.
    """

    result: object
    shed_chunks: int
    reason: str = "overload"

    @property
    def partial(self) -> bool:
        return True


# Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreakerBoard:
    """Per-node circuit breakers layered on the health tracker.

    A node's breaker trips open when ``failure_threshold`` failures
    (timeouts, errors, queue rejections) land within a sliding
    ``window_s``.  While open, :meth:`allow` is ``False`` and callers
    route around the node (degraded read or chunk-fetch fallback).
    After ``reset_s`` the breaker moves to half-open and :meth:`allow`
    grants exactly one probe trial; a recorded success closes the
    breaker, a failure re-opens it for another ``reset_s``.

    All transitions are pure bookkeeping on the simulated clock — no
    timeline events — and are traced as ``breaker.open`` /
    ``breaker.half_open`` instants when a tracer is attached.
    """

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        failure_threshold: int,
        window_s: float,
        reset_s: float,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.sim = sim
        self.failure_threshold = failure_threshold
        self.window_s = window_s
        self.reset_s = reset_s
        self.state = [CLOSED] * num_nodes
        self.opens = [0] * num_nodes
        self._failures: list[deque[float]] = [deque() for _ in range(num_nodes)]
        self._reopen_at = [0.0] * num_nodes
        self._probe_inflight = [False] * num_nodes
        # A liveness restore that lands while a half-open probe is in
        # flight abandons that probe: its eventual outcome describes the
        # pre-restore node and must not re-trip (or re-close) the fresh
        # breaker.  The flag eats exactly one record_* call.
        self._probe_abandoned = [False] * num_nodes

    def ensure_size(self, num_nodes: int) -> None:
        """Grow the per-node state for nodes that joined at runtime
        (new nodes start with a closed breaker)."""
        while len(self.state) < num_nodes:
            self.state.append(CLOSED)
            self.opens.append(0)
            self._failures.append(deque())
            self._reopen_at.append(0.0)
            self._probe_inflight.append(False)
            self._probe_abandoned.append(False)

    def allow(self, node_id: int) -> bool:
        """May traffic be routed to ``node_id`` right now?

        In half-open state this grants the single probe slot as a side
        effect: the first caller gets ``True`` (its op is the trial),
        everyone else is refused until the trial resolves.
        """
        state = self.state[node_id]
        if state == CLOSED:
            return True
        if state == OPEN:
            if self.sim.now < self._reopen_at[node_id]:
                return False
            self.state[node_id] = HALF_OPEN
            self._probe_inflight[node_id] = False
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant("breaker.half_open", cat="overload", node=node_id)
        if self._probe_inflight[node_id]:
            return False
        self._probe_inflight[node_id] = True
        return True

    def record_failure(self, node_id: int) -> bool:
        """Account one failure; returns ``True`` if the breaker tripped."""
        if self._probe_abandoned[node_id]:
            # Stale outcome of a probe abandoned by a liveness restore:
            # it describes the node before it came back, so a single
            # failure report must not trip the clean breaker.
            self._probe_abandoned[node_id] = False
            return False
        state = self.state[node_id]
        if state == HALF_OPEN:
            self._trip(node_id)
            return True
        if state == OPEN:
            return False
        now = self.sim.now
        window = self._failures[node_id]
        window.append(now)
        floor = now - self.window_s
        while window and window[0] < floor:
            window.popleft()
        if len(window) >= self.failure_threshold:
            self._trip(node_id)
            return True
        return False

    def record_success(self, node_id: int) -> None:
        if self._probe_abandoned[node_id]:
            self._probe_abandoned[node_id] = False
            return
        if self.state[node_id] == HALF_OPEN:
            self.state[node_id] = CLOSED
            self._failures[node_id].clear()
            self._probe_inflight[node_id] = False

    def on_liveness(self, node_id: int, alive: bool) -> None:
        """A restored node starts with a clean (closed) breaker.

        The reset is atomic: state, the sliding failure window, the
        reopen timer, and the half-open probe slot all clear together.
        A probe that was mid-flight when the restore landed is marked
        abandoned so its stale outcome cannot flip the fresh breaker
        (restore-during-half-open race).
        """
        if alive:
            self.state[node_id] = CLOSED
            self._failures[node_id].clear()
            self._reopen_at[node_id] = 0.0
            if self._probe_inflight[node_id]:
                self._probe_abandoned[node_id] = True
            self._probe_inflight[node_id] = False

    def open_count(self) -> int:
        return sum(1 for s in self.state if s == OPEN)

    def _trip(self, node_id: int) -> None:
        self.state[node_id] = OPEN
        self._reopen_at[node_id] = self.sim.now + self.reset_s
        self._failures[node_id].clear()
        self._probe_inflight[node_id] = False
        self.opens[node_id] += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("breaker.open", cat="overload", node=node_id)


def install_admission_control(cluster, config) -> None:
    """Apply a store config's admission knobs to every node service loop.

    Bounds the CPU pool, the disk device queue, and the NIC ingress and
    egress pipes of each storage node.  With ``admission_queue_depth``
    at 0 or the ``block`` policy this is a no-op and queues stay
    unbounded (the pre-overload-protection behaviour).  Idempotent, so
    a store pair sharing one cluster can both install it.
    """
    if config.admission_policy not in ADMISSION_POLICIES:
        raise ValueError(
            f"unknown admission_policy {config.admission_policy!r}; "
            f"expected one of {ADMISSION_POLICIES}"
        )
    depth = config.admission_queue_depth
    if depth <= 0 or config.admission_policy == "block":
        return
    shed = config.admission_policy == "shed-lowest-priority"
    # Remembered so nodes added at runtime get the same bounds.
    cluster.admission = (depth, shed)
    for node in cluster.nodes:
        for resource in (
            node.cpu,
            node.disk.device,
            node.endpoint.egress,
            node.endpoint.ingress,
        ):
            resource.max_queue = depth
            resource.shed_low_priority = shed


def install_circuit_breakers(cluster, config) -> None:
    """Install the per-node breaker board on the cluster when enabled.

    No-op with ``breaker_failure_threshold`` at 0 (the default) or when
    a board is already installed — a FusionStore and its fallback store
    share one cluster, and the first install wins.
    """
    if config.breaker_failure_threshold <= 0 or cluster.breakers is not None:
        return
    board = CircuitBreakerBoard(
        cluster.sim,
        cluster.num_nodes,
        config.breaker_failure_threshold,
        config.breaker_window_s,
        config.breaker_reset_s,
    )
    cluster.breakers = board
    cluster.add_liveness_listener(board.on_liveness)
