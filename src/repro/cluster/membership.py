"""Epoch-bumped cluster membership driving ring placement and routing.

The elastic layer between the fixed topology the seed was built on and
runtime topology churn: a :class:`MembershipManager` owns the
consistent-hash ring (:mod:`repro.cluster.ring`), the authoritative
:class:`MembershipRecord` (who is a member, who is draining), and the
replication of that record to every member's metadata store — the same
discipline object metadata follows, so a surviving node can always
answer "what was the newest membership epoch?".

Lifecycle of a node:

* **join** — :meth:`MembershipManager.join` (via ``Cluster.add_node``)
  plants the node's ring tokens and bumps the epoch.  New placements and
  coordination immediately include it; existing data migrates in the
  background (:class:`repro.core.rebalance.Rebalancer`).
* **drain** — the node stays *alive* and keeps serving reads for blocks
  it still holds, but its ring tokens are removed: no new placements,
  no new coordination.  Draining is how data is moved off a node safely
  before it leaves.
* **remove** — only valid for a drained node; it leaves the member set.
  The cluster keeps the node's slot (ids are stable indexes everywhere)
  and marks it dead.

Membership is orthogonal to liveness: a *crashed* node is still a
member (its data is repaired/awaited), while a *drained* node is alive
but no longer a placement target.

Everything here is metadata-plane — no simulated time, no RNG draws —
and the whole module is inert unless ``StoreConfig.membership_enabled``
turned it on, so default-knob runs stay event-identical to the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.ring import HashRing

#: Reserved metadata names (``node.put_meta`` keys) that do not describe
#: user objects; fsck's dangling-replica scan skips this prefix.
RESERVED_META_PREFIX = "__"

#: The metadata key the membership record is replicated under.
MEMBERSHIP_META = "__membership__"


@dataclass(frozen=True)
class MembershipRecord:
    """One epoch's view of the member set (replicated to every member)."""

    epoch: int
    members: tuple[int, ...]
    draining: tuple[int, ...] = ()

    def active(self) -> tuple[int, ...]:
        """Members eligible for new placements and coordination."""
        draining = set(self.draining)
        return tuple(m for m in self.members if m not in draining)


class MembershipManager:
    """Owns the ring, the membership record, and its replication.

    Installed as ``cluster.membership`` by :func:`install_membership`;
    when present, ``Cluster.coordinator_for`` and ``Cluster.place_stripe``
    route through the ring instead of the seed's name-hash / RNG paths.
    """

    def __init__(self, cluster, config) -> None:
        self.cluster = cluster
        self.ring = HashRing(
            cluster.config.placement_seed,
            vnodes=config.ring_vnodes,
            node_ids=range(cluster.num_nodes),
        )
        self.record = MembershipRecord(
            epoch=1, members=tuple(range(cluster.num_nodes))
        )
        self.republish()

    @property
    def epoch(self) -> int:
        return self.record.epoch

    def active_members(self) -> tuple[int, ...]:
        return self.record.active()

    def is_active(self, node_id: int) -> bool:
        return node_id in self.ring

    # -- membership transitions (each bumps the epoch and republishes) ------

    def join(self, node_id: int) -> None:
        """Admit ``node_id`` as a full placement/coordination target."""
        if node_id in self.record.members:
            raise ValueError(f"node {node_id} is already a member")
        self.ring.add_node(node_id)
        self._bump(
            members=tuple(sorted(self.record.members + (node_id,))),
            draining=self.record.draining,
        )

    def drain(self, node_id: int) -> None:
        """Stop placing new data on (or coordinating through) the node.

        The node keeps serving reads for blocks it already holds; the
        Rebalancer migrates those to ring-correct positions in the
        background, after which :meth:`remove` retires it.
        """
        if node_id not in self.record.members:
            raise ValueError(f"node {node_id} is not a member")
        if node_id in self.record.draining:
            raise ValueError(f"node {node_id} is already draining")
        if len(self.record.active()) <= 1:
            raise ValueError("cannot drain the last active member")
        self.ring.remove_node(node_id)
        self._bump(
            members=self.record.members,
            draining=tuple(sorted(self.record.draining + (node_id,))),
        )

    def remove(self, node_id: int) -> None:
        """Retire a drained node from the member set."""
        if node_id not in self.record.draining:
            raise ValueError(f"node {node_id} must be drained before removal")
        self._bump(
            members=tuple(m for m in self.record.members if m != node_id),
            draining=tuple(d for d in self.record.draining if d != node_id),
        )

    def _bump(self, members: tuple[int, ...], draining: tuple[int, ...]) -> None:
        self.record = MembershipRecord(
            epoch=self.record.epoch + 1, members=members, draining=draining
        )
        tracer = self.cluster.sim.tracer
        if tracer is not None:
            tracer.instant(
                "membership.epoch", cat="membership",
                epoch=self.record.epoch,
                members=len(members), draining=len(draining),
            )
        self.republish()

    def republish(self) -> None:
        """Mirror the current record to every alive member's meta store.

        Metadata-plane (no simulated bytes), like the fixed store's
        placement-map publish: the record is a handful of ints.
        """
        for nid in self.record.members:
            node = self.cluster.node(nid)
            if node.alive:
                node.put_meta(MEMBERSHIP_META, self.record)

    # -- routing and placement ---------------------------------------------

    def coordinator_for(self, object_name: str):
        """Route to the ring owner, walking on past dead nodes."""
        for nid in self.ring.preference(object_name):
            node = self.cluster.node(nid)
            if node.alive:
                return node
        # No active member alive: fall back to any alive member (a
        # draining node can still coordinate in extremis), then to the
        # seed's degenerate whole-cluster-down answer.
        for nid in self.record.members:
            node = self.cluster.node(nid)
            if node.alive:
                return node
        return self.cluster.node(self.record.members[0])

    def placement_for(self, key: str, count: int) -> list[int]:
        """Ring-deterministic node list for one stripe's (or one meta
        replica set's) blocks."""
        return self.ring.nodes_for(key, count)


def install_membership(cluster, config) -> None:
    """Install the membership manager when the knob is on.

    No-op with ``membership_enabled`` off (the default) or when a
    manager is already installed — a FusionStore and its fallback store
    share one cluster, and the first install wins.
    """
    if not getattr(config, "membership_enabled", False):
        return
    if cluster.membership is not None:
        return
    cluster.membership = MembershipManager(cluster, config)
