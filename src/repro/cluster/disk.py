"""Disk model: a FIFO device with seek latency and sequential bandwidth."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import metrics as m
from repro.cluster.simcore import QueueFull, Resource, Simulator


@dataclass
class DiskConfig:
    """NVMe-class defaults matching the paper's r6525 nodes.

    All I/O in the paper is direct I/O (no page cache), so every read pays
    the device: a fixed access latency plus bytes over the sequential
    bandwidth.
    """

    bandwidth_bps: float = 4.0e9  # 4 GB/s sequential read
    access_latency_s: float = 0.0001  # 100 us per request


class Disk:
    """One node's storage device."""

    def __init__(self, sim: Simulator, config: DiskConfig) -> None:
        self.sim = sim
        self.config = config
        self._device = Resource(sim, capacity=1)
        self.total_bytes = 0
        #: Service-time multiplier; raised above 1.0 by fault injection
        #: to model a degraded device (slow-node fault).
        self.slow_factor = 1.0
        #: Independent fail-slow multiplier (gray-failure fault plane);
        #: composes multiplicatively with ``slow_factor`` so overlapping
        #: slow windows and gray states reset independently.
        self.gray_factor = 1.0

    @property
    def device(self) -> Resource:
        """The FIFO device queue (admission control bounds this)."""
        return self._device

    def read(self, nbytes: int, query: m.QueryMetrics | None = None, _op: str = "disk.read"):
        """Process: read ``nbytes`` from the device (FIFO queued).

        Raises :class:`~repro.cluster.simcore.QueueFull` when the device
        queue is admission-bounded and refuses the request; internal
        traffic (``query=None``) is exempt.
        """
        if nbytes < 0:
            raise ValueError("cannot read a negative number of bytes")
        start = self.sim.now
        tracer = self.sim.tracer
        span = tracer.begin(_op, cat="device", bytes=nbytes) if tracer is not None else None
        priority = None if query is None else query.priority
        tenant = None if query is None else query.tenant
        try:
            with (
                yield from self._device.acquire(
                    priority, tenant=tenant, cost=float(max(nbytes, 1))
                )
            ):
                duration = self.config.access_latency_s + nbytes / self.config.bandwidth_bps
                yield self.sim.timeout(duration * self.slow_factor * self.gray_factor)
        except QueueFull:
            if span is not None:
                tracer.finish(span, rejected=True)
            raise
        if span is not None:
            tracer.finish(span)
        self.total_bytes += nbytes
        if query is not None:
            query.add(m.DISK, self.sim.now - start)

    def write(self, nbytes: int, query: m.QueryMetrics | None = None):
        """Process: write ``nbytes`` (same device model as a read)."""
        yield from self.read(nbytes, query, _op="disk.write")
