"""Discrete-event simulated storage cluster.

Stands in for the paper's 10-machine CloudLab testbed: FIFO-queued NIC
pipes, NVMe-class disks and CPU core pools produce contention — and
therefore realistic median/tail latency behaviour — under concurrent
clients.
"""

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.disk import Disk, DiskConfig
from repro.cluster.faults import AppliedFault, FaultEvent, FaultInjector, random_schedule
from repro.cluster.health import NodeHealthTracker
from repro.cluster.metrics import (
    CATEGORIES,
    CPU,
    DISK,
    NETWORK,
    OTHER,
    ClusterMetrics,
    QueryMetrics,
    percentile,
)
from repro.cluster.network import Network, NetworkConfig, NetworkEndpoint
from repro.cluster.node import CpuConfig, StorageNode
from repro.cluster.simcore import (
    Event,
    Process,
    Resource,
    SimulationError,
    Simulator,
    all_of,
)

__all__ = [
    "AppliedFault",
    "CATEGORIES",
    "CPU",
    "Cluster",
    "ClusterConfig",
    "ClusterMetrics",
    "CpuConfig",
    "DISK",
    "Disk",
    "DiskConfig",
    "Event",
    "FaultEvent",
    "FaultInjector",
    "NodeHealthTracker",
    "NETWORK",
    "Network",
    "NetworkConfig",
    "NetworkEndpoint",
    "OTHER",
    "Process",
    "QueryMetrics",
    "Resource",
    "SimulationError",
    "Simulator",
    "StorageNode",
    "all_of",
    "percentile",
    "random_schedule",
]
