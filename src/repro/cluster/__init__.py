"""Discrete-event simulated storage cluster.

Stands in for the paper's 10-machine CloudLab testbed: FIFO-queued NIC
pipes, NVMe-class disks and CPU core pools produce contention — and
therefore realistic median/tail latency behaviour — under concurrent
clients.
"""

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.disk import Disk, DiskConfig
from repro.cluster.faults import AppliedFault, FaultEvent, FaultInjector, random_schedule
from repro.cluster.health import NodeHealthTracker
from repro.cluster.membership import (
    MEMBERSHIP_META,
    MembershipManager,
    MembershipRecord,
    install_membership,
)
from repro.cluster.ring import HashRing
from repro.cluster.metrics import (
    CATEGORIES,
    CPU,
    DISK,
    NETWORK,
    OTHER,
    ClusterMetrics,
    QueryMetrics,
    percentile,
)
from repro.cluster.network import Network, NetworkConfig, NetworkEndpoint
from repro.cluster.node import CpuConfig, StorageNode
from repro.cluster.overload import (
    BACKGROUND_PRIORITY,
    FOREGROUND_PRIORITY,
    CancelScope,
    CircuitBreakerBoard,
    Deadline,
    DeadlineExceeded,
    PartialResult,
    install_admission_control,
    install_circuit_breakers,
)
from repro.cluster.simcore import (
    Event,
    Process,
    QueueFull,
    Resource,
    SimulationError,
    Simulator,
    all_of,
    any_of,
)

__all__ = [
    "AppliedFault",
    "BACKGROUND_PRIORITY",
    "CATEGORIES",
    "CPU",
    "CancelScope",
    "CircuitBreakerBoard",
    "Cluster",
    "ClusterConfig",
    "ClusterMetrics",
    "CpuConfig",
    "DISK",
    "Deadline",
    "DeadlineExceeded",
    "Disk",
    "DiskConfig",
    "Event",
    "FOREGROUND_PRIORITY",
    "FaultEvent",
    "FaultInjector",
    "HashRing",
    "MEMBERSHIP_META",
    "MembershipManager",
    "MembershipRecord",
    "NodeHealthTracker",
    "NETWORK",
    "Network",
    "NetworkConfig",
    "NetworkEndpoint",
    "OTHER",
    "PartialResult",
    "Process",
    "QueryMetrics",
    "QueueFull",
    "Resource",
    "SimulationError",
    "Simulator",
    "StorageNode",
    "all_of",
    "any_of",
    "install_admission_control",
    "install_circuit_breakers",
    "install_membership",
    "percentile",
    "random_schedule",
]
