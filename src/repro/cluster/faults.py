"""Deterministic fault injection for the simulated cluster.

A :class:`FaultInjector` drives a *schedule* of :class:`FaultEvent`\\ s
through the simulator so any workload can run under a reproducible fault
pattern: node crashes and recoveries at fixed simulated times, transient
unavailability windows (blips), slow nodes (degraded disk and NIC
throughput for a window), silent block corruption, and per-RPC drop
windows.  Schedules are plain data — write them by hand for scripted
scenarios or generate them with :func:`random_schedule` from a seed.

Everything is deterministic: the event list is applied in time order,
and the only randomness (which block to corrupt, whether a given RPC in
a drop window is dropped) comes from one seeded ``random.Random``
consumed in simulation order.  The same seed and workload therefore
replay bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cluster.network import LinkState


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``kind`` is one of:

    * ``"crash"`` — mark the node dead (``wipe=True`` also discards its
      stored blocks, modelling a disk loss rather than a reboot);
    * ``"restore"`` — bring the node back (blocks intact unless wiped);
    * ``"blip"`` — crash now, restore automatically after ``duration``;
    * ``"slow"`` — multiply the node's disk and NIC service times by
      ``factor`` for ``duration`` seconds (a degraded device);
    * ``"corrupt"`` — silently flip bytes in ``blocks`` stored blocks
      chosen by the injector's seeded RNG (bit rot; only scrubbing or a
      failed decode will notice);
    * ``"drop"`` — for ``duration`` seconds, RPCs to/from the node are
      dropped with probability ``rate`` (a flaky link);
    * ``"crashpoint"`` — from time ``at``, arm the named WAL crash point
      (``point``; see ``repro.core.wal.CRASH_POINTS``) so the next
      Put/Delete reaching that stage kills its coordinator mid-operation
      (``node_id < 0`` = whichever node is coordinating);
    * ``"overload"`` — for ``duration`` seconds, bombard the node with
      background-priority requests at ``rate`` per second, each reading
      ``nbytes`` from disk then burning the matching CPU scan time (a
      rogue tenant / runaway batch job filling the service queues);
    * ``"slow_burst"`` — a short, sharp ``slow`` (same mechanism): the
      node's devices degrade by ``factor`` for ``duration`` seconds,
      modelling GC pauses or thermal throttling spikes;
    * ``"join"`` — add a fresh node to the cluster at runtime
      (``node_id`` is ignored, conventionally ``-1``; the new node's id
      is reported in the applied-fault detail).  A no-op unless the
      cluster has a membership manager installed
      (``StoreConfig.membership_enabled``);
    * ``"drain"`` — take the node out of new placements/coordination
      (it stays alive and serves reads until rebalanced away).  A no-op
      without membership, or when the drain would be invalid;
    * ``"flap"`` — crash/restore the node repeatedly at ``rate`` cycles
      per second for ``duration`` seconds (a flapping peer the failure
      detector and breakers must ride out), ending restored;
    * ``"tenant_storm"`` — for ``duration`` seconds, bombard the node
      with *foreground* requests at ``rate`` per second on behalf of
      ``tenant`` (a storming tenant the QoS layer must isolate: its
      requests are charged to that tenant's quota buckets and DRR
      sub-queues, so other tenants keep their fair share);
    * ``"partition"`` — sever every link between the node set ``nodes``
      (side A) and the rest of the cluster (side B) in both directions;
      heals automatically after ``duration`` (0 = stays cut until a
      later event heals it by hand).  RPCs across the cut are lost,
      direct repair/recovery reads treat the far side as unreachable,
      and the quorum guard refuses minority-side metadata republishes;
    * ``"asym_link"`` — degrade the *directed* link ``node_id -> peer``
      only: RPCs crossing it are dropped with probability ``rate`` and
      each transfer pays ``latency_s`` extra, for ``duration`` seconds.
      The reverse direction stays healthy (the gray failure pattern
      node-scoped drops cannot express);
    * ``"fail_slow"`` — multiply the node's disk and NIC *service* times
      by ``factor`` for ``duration`` seconds on the independent
      gray-failure plane (``gray_factor``): unlike ``slow`` it composes
      with concurrent slow windows instead of clobbering their reset,
      and it is the canonical trigger for the health tracker's
      greylist verdict — the node answers everything, just slowly.
    """

    at: float
    kind: str
    node_id: int
    duration: float = 0.0
    factor: float = 1.0
    rate: float = 0.0
    wipe: bool = False
    blocks: int = 1
    point: str = ""
    nbytes: int = 0
    tenant: str = ""
    #: Partition side A (node ids); the cut is A <-> everything else.
    nodes: tuple = ()
    #: Directed-link destination for ``asym_link``.
    peer: int = -1
    #: Extra per-transfer latency for ``asym_link``.
    latency_s: float = 0.0

    KINDS = (
        "crash", "restore", "blip", "slow", "corrupt", "drop", "crashpoint",
        "overload", "slow_burst", "join", "drain", "flap", "tenant_storm",
        "partition", "asym_link", "fail_slow",
    )

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {self.KINDS}")
        if self.at < 0:
            raise ValueError("fault time must be >= 0")
        if self.kind in ("blip", "slow", "drop", "overload", "slow_burst", "flap", "tenant_storm", "asym_link", "fail_slow") and self.duration <= 0:
            raise ValueError(f"{self.kind} fault needs a positive duration")
        if self.kind in ("slow", "slow_burst", "fail_slow") and self.factor < 1.0:
            raise ValueError("slow factor must be >= 1 (it degrades throughput)")
        if self.kind == "drop" and not (0.0 < self.rate <= 1.0):
            raise ValueError("drop rate must be in (0, 1]")
        if self.kind in ("overload", "flap", "tenant_storm") and self.rate <= 0:
            raise ValueError(f"{self.kind} fault needs a positive rate")
        if self.kind == "crashpoint" and not self.point:
            raise ValueError("crashpoint fault needs a point name")
        if self.kind == "tenant_storm" and not self.tenant:
            raise ValueError("tenant_storm fault needs a tenant id")
        if self.kind == "partition" and not self.nodes:
            raise ValueError("partition fault needs a non-empty node set")
        if self.kind == "asym_link":
            if self.peer < 0 or self.peer == self.node_id:
                raise ValueError("asym_link fault needs a distinct peer node")
            if not (0.0 <= self.rate <= 1.0):
                raise ValueError("asym_link drop rate must be in [0, 1]")
            if self.rate <= 0.0 and self.latency_s <= 0.0:
                raise ValueError("asym_link fault needs a drop rate or extra latency")


@dataclass
class AppliedFault:
    """Log entry: one fault as it actually landed."""

    at: float
    event: FaultEvent
    detail: str = ""


class FaultInjector:
    """Applies a fault schedule to a cluster inside the simulation.

    Construct with the cluster, a list of :class:`FaultEvent`, and a
    seed, then call :meth:`install` *before* ``sim.run()``; the injector
    registers itself as ``cluster.faults`` (consulted by the RPC layer
    for drop windows) and spawns a driver process that sleeps to each
    event's time and applies it.
    """

    def __init__(self, cluster, schedule, seed: int = 0) -> None:
        self.cluster = cluster
        self.schedule = sorted(schedule, key=lambda ev: ev.at)
        self.seed = seed
        self.rng = random.Random(seed)
        #: Separate seeded stream for per-link drop decisions so arming
        #: link faults never shifts the main stream's draws — a schedule
        #: mixing old and new families replays the old families'
        #: randomness (which block to corrupt, node-window drops)
        #: bit-identically to a schedule without the new ones.
        self.link_rng = random.Random(seed ^ 0x5DEECE66D)
        self.log: list[AppliedFault] = []
        #: node_id -> (window end, drop probability)
        self._drop_windows: dict[int, tuple[float, float]] = {}
        #: Armed WAL crash points: (point, node_id or None) -> shots left.
        self._crash_points: dict[tuple[str, int | None], int] = {}
        self._installed = False
        cluster.faults = self

    def install(self) -> "FaultInjector":
        """Spawn the schedule-driver process (idempotent)."""
        if not self._installed:
            self._installed = True
            if self.schedule:
                self.cluster.sim.process(self._driver())
        return self

    # -- RPC drop hook (called by repro.core.scatter_gather) -----------------

    def drop_rpc(self, node_id: int, src_id: int | None = None) -> bool:
        """Decide whether an RPC exchanged with ``node_id`` is dropped now.

        ``src_id`` (the coordinator's node id, when the op is remote)
        additionally consults the per-link fault plane: a severed link in
        either direction loses the RPC deterministically, and directed
        drop rates are drawn from the injector's *link* RNG stream so
        link faults never perturb the main stream's replay.
        """
        window = self._drop_windows.get(node_id)
        if window is not None:
            until, rate = window
            if self.cluster.sim.now >= until:
                del self._drop_windows[node_id]
            elif self.rng.random() < rate:
                return True
        if src_id is None or src_id == node_id:
            return False
        network = self.cluster.network
        if not network.links:
            return False
        src_name = self.cluster.node(src_id).endpoint.name
        dst_name = self.cluster.node(node_id).endpoint.name
        if network.link_severed(src_name, dst_name):
            return True
        # An RPC needs both directions (request out, reply back): it
        # survives only if neither directed leg drops it.
        p_keep = 1.0
        for key in ((src_name, dst_name), (dst_name, src_name)):
            state = network.links.get(key)
            if state is not None and state.drop_rate > 0.0:
                p_keep *= 1.0 - state.drop_rate
        if p_keep >= 1.0:
            return False
        return self.link_rng.random() >= p_keep

    # -- WAL crash points (consulted by repro.core.wal) ----------------------

    def arm_crash_point(self, point: str, node_id: int | None = None, count: int = 1) -> None:
        """Arm a named WAL stage: the next ``count`` Put/Delete operations
        reaching ``point`` on ``node_id`` (None = any coordinator) crash
        their coordinator there."""
        key = (point, node_id)
        self._crash_points[key] = self._crash_points.get(key, 0) + count

    def should_crash(self, node_id: int, point: str) -> bool:
        """Consume one armed shot matching this (node, point), if any."""
        for key in ((point, node_id), (point, None)):
            shots = self._crash_points.get(key)
            if shots:
                if shots == 1:
                    del self._crash_points[key]
                else:
                    self._crash_points[key] = shots - 1
                self.log.append(
                    AppliedFault(
                        at=self.cluster.sim.now,
                        event=FaultEvent(
                            at=self.cluster.sim.now,
                            kind="crashpoint",
                            node_id=node_id,
                            point=point,
                        ),
                        detail=f"coordinator {node_id} killed at {point}",
                    )
                )
                return True
        return False

    # -- schedule driver ------------------------------------------------------

    def _driver(self):
        sim = self.cluster.sim
        for event in self.schedule:
            if event.at > sim.now:
                yield sim.timeout(event.at - sim.now)
            self._apply(event)

    def _later(self, delay: float, fn) -> None:
        def waiter():
            yield self.cluster.sim.timeout(delay)
            fn()

        self.cluster.sim.process(waiter())

    def _apply(self, event: FaultEvent) -> None:
        sim = self.cluster.sim
        # Join events carry no target node (node_id = -1 by convention).
        in_range = 0 <= event.node_id < len(self.cluster.nodes)
        node = self.cluster.node(event.node_id) if in_range else None
        detail = ""
        if event.kind == "crash":
            self.cluster.fail_node(event.node_id, wipe=event.wipe)
        elif event.kind == "restore":
            self.cluster.restore_node(event.node_id)
        elif event.kind == "blip":
            self.cluster.fail_node(event.node_id, wipe=event.wipe)
            self._later(event.duration, lambda: self.cluster.restore_node(event.node_id))
        elif event.kind == "slow":
            node.disk.slow_factor = event.factor
            node.endpoint.slow_factor = event.factor

            def reset(n=node):
                n.disk.slow_factor = 1.0
                n.endpoint.slow_factor = 1.0

            self._later(event.duration, reset)
        elif event.kind == "corrupt":
            corrupted = self._corrupt_blocks(node, event.blocks)
            detail = ",".join(corrupted) if corrupted else "no blocks stored"
        elif event.kind == "drop":
            self._drop_windows[event.node_id] = (sim.now + event.duration, event.rate)
        elif event.kind == "crashpoint":
            self.arm_crash_point(
                event.point, None if event.node_id < 0 else event.node_id
            )
        elif event.kind == "overload":
            nbytes = event.nbytes if event.nbytes > 0 else 262_144
            sim.process(
                self._overload_driver(node, sim.now + event.duration, event.rate, nbytes)
            )
            detail = f"{event.rate:.0f} req/s of {nbytes}B for {event.duration:.3f}s"
        elif event.kind == "slow_burst":
            node.disk.slow_factor = event.factor
            node.endpoint.slow_factor = event.factor

            def reset_burst(n=node):
                n.disk.slow_factor = 1.0
                n.endpoint.slow_factor = 1.0

            self._later(event.duration, reset_burst)
        elif event.kind == "join":
            if self.cluster.membership is None:
                detail = "membership disabled; join ignored"
            else:
                detail = f"node {self.cluster.add_node()} joined"
        elif event.kind == "drain":
            if self.cluster.membership is None:
                detail = "membership disabled; drain ignored"
            else:
                try:
                    self.cluster.drain_node(event.node_id)
                    detail = f"node {event.node_id} draining"
                except ValueError as exc:
                    detail = f"drain refused: {exc}"
        elif event.kind == "flap":
            sim.process(
                self._flap_driver(event.node_id, sim.now + event.duration, event.rate)
            )
            detail = f"flapping at {event.rate:.1f} cycles/s for {event.duration:.3f}s"
        elif event.kind == "tenant_storm":
            nbytes = event.nbytes if event.nbytes > 0 else 262_144
            sim.process(
                self._tenant_storm_driver(
                    node, sim.now + event.duration, event.rate, nbytes, event.tenant
                )
            )
            detail = (
                f"tenant {event.tenant!r} storming at {event.rate:.0f} req/s "
                f"of {nbytes}B for {event.duration:.3f}s"
            )
        elif event.kind == "partition":
            detail = self._apply_partition(event)
        elif event.kind == "asym_link":
            detail = self._apply_asym_link(event)
        elif event.kind == "fail_slow":
            node.disk.gray_factor = event.factor
            node.endpoint.gray_factor = event.factor

            def reset_gray(n=node):
                n.disk.gray_factor = 1.0
                n.endpoint.gray_factor = 1.0

            self._later(event.duration, reset_gray)
            detail = f"gray factor {event.factor:.1f}x for {event.duration:.3f}s"
        self.log.append(AppliedFault(at=sim.now, event=event, detail=detail))

    # -- per-link fault plane -------------------------------------------------

    def _link_state(self, src_name: str, dst_name: str) -> LinkState:
        """Get-or-create the directed link's state (so a partition and a
        concurrent asym_link on the same pair compose instead of
        clobbering each other)."""
        links = self.cluster.network.links
        state = links.get((src_name, dst_name))
        if state is None:
            state = LinkState()
            links[(src_name, dst_name)] = state
        return state

    def _prune_link(self, src_name: str, dst_name: str) -> None:
        """Drop the link entry once every fault axis on it has cleared
        (keeps the matrix empty — and the hot path free — when healthy)."""
        links = self.cluster.network.links
        state = links.get((src_name, dst_name))
        if state is not None and state.clear:
            del links[(src_name, dst_name)]

    def _apply_partition(self, event: FaultEvent) -> str:
        """Sever every link between side A (``event.nodes``) and the rest
        of the cluster, both directions; heal after ``duration``."""
        num_nodes = len(self.cluster.nodes)
        side_a = sorted({n for n in event.nodes if 0 <= n < num_nodes})
        side_b = [n for n in range(num_nodes) if n not in set(side_a)]
        if not side_a or not side_b:
            return "partition is trivial (one side empty); ignored"
        pairs: list[tuple[str, str]] = []
        for a in side_a:
            for b in side_b:
                a_name = self.cluster.node(a).endpoint.name
                b_name = self.cluster.node(b).endpoint.name
                for key in ((a_name, b_name), (b_name, a_name)):
                    self._link_state(*key).severed = True
                    pairs.append(key)

        if event.duration > 0:

            def heal():
                # Clear only the severed axis: a concurrent asym_link's
                # drop/latency state on the same pair must survive.
                for src_name, dst_name in pairs:
                    state = self.cluster.network.links.get((src_name, dst_name))
                    if state is not None:
                        state.severed = False
                        self._prune_link(src_name, dst_name)

            self._later(event.duration, heal)
        heal_note = f"heals at +{event.duration:.3f}s" if event.duration > 0 else "no auto-heal"
        return f"cut {side_a} <-> {side_b} ({heal_note})"

    def _apply_asym_link(self, event: FaultEvent) -> str:
        """Degrade only the directed ``node_id -> peer`` link."""
        num_nodes = len(self.cluster.nodes)
        if not (0 <= event.node_id < num_nodes and 0 <= event.peer < num_nodes):
            return "asym_link endpoints out of range; ignored"
        src_name = self.cluster.node(event.node_id).endpoint.name
        dst_name = self.cluster.node(event.peer).endpoint.name
        state = self._link_state(src_name, dst_name)
        state.drop_rate = event.rate
        state.extra_latency_s = event.latency_s

        def reset():
            link = self.cluster.network.links.get((src_name, dst_name))
            if link is not None:
                link.drop_rate = 0.0
                link.extra_latency_s = 0.0
                self._prune_link(src_name, dst_name)

        self._later(event.duration, reset)
        return (
            f"{src_name}->{dst_name} degraded (drop {event.rate:.2f}, "
            f"+{event.latency_s * 1e3:.1f}ms) for {event.duration:.3f}s"
        )

    def _flap_driver(self, node_id: int, until: float, rate: float):
        """Process: crash/restore ``node_id`` at ``rate`` cycles per
        second until ``until``; the node always ends restored."""
        sim = self.cluster.sim
        half_cycle = 0.5 / rate
        while sim.now < until:
            self.cluster.fail_node(node_id)
            yield sim.timeout(half_cycle)
            self.cluster.restore_node(node_id)
            yield sim.timeout(half_cycle)
        self.cluster.restore_node(node_id)

    def _overload_driver(self, node, until: float, rate: float, nbytes: int):
        """Process: fire background requests at ``node`` until ``until``."""
        sim = self.cluster.sim
        interval = 1.0 / rate
        while sim.now < until:
            sim.process(self._background_request(node, nbytes))
            yield sim.timeout(interval)

    def _background_request(self, node, nbytes: int):
        """One injected background request: disk read + scan compute.

        Runs in the background priority lane so admission control can
        reject or shed it; refusals are swallowed (the injected tenant
        has no retry logic — that is the point of the protection).
        """
        from repro.cluster.metrics import QueryMetrics
        from repro.cluster.overload import BACKGROUND_PRIORITY
        from repro.cluster.simcore import QueueFull

        metrics = QueryMetrics(priority=BACKGROUND_PRIORITY)
        try:
            yield from node.disk.read(nbytes, metrics)
            yield from node.compute(nbytes / node.cpu_config.scan_bps, metrics)
        except QueueFull:
            pass

    def _tenant_storm_driver(self, node, until: float, rate: float, nbytes: int, tenant: str):
        """Process: fire foreground requests tagged ``tenant`` until ``until``."""
        sim = self.cluster.sim
        interval = 1.0 / rate
        while sim.now < until:
            sim.process(self._tenant_request(node, nbytes, tenant))
            yield sim.timeout(interval)

    def _tenant_request(self, node, nbytes: int, tenant: str):
        """One storming-tenant request: quota check, disk read, scan.

        Runs in the *foreground* lane — the whole point of the storm is
        that priority alone cannot protect other tenants; only the DRR
        fair queues and the tenant's quota can.  Typed refusals
        (QuotaExceeded, QueueFull) are swallowed: the storm has no retry
        logic, it just keeps offering load.
        """
        from repro.cluster.metrics import QueryMetrics
        from repro.cluster.overload import FOREGROUND_PRIORITY
        from repro.cluster.qos import QuotaExceeded
        from repro.cluster.simcore import QueueFull

        metrics = QueryMetrics(priority=FOREGROUND_PRIORITY, tenant=tenant)
        try:
            if self.cluster.qos is not None:
                self.cluster.qos.admit(tenant, metrics, nbytes=nbytes)
            yield from node.disk.read(nbytes, metrics)
            yield from node.compute(nbytes / node.cpu_config.scan_bps, metrics)
        except (QueueFull, QuotaExceeded):
            pass

    def _corrupt_blocks(self, node, count: int) -> list[str]:
        """Flip one byte in up to ``count`` seeded-random stored blocks."""
        candidates = [bid for bid in node.block_ids() if node.block_size(bid) > 0]
        corrupted = []
        for _ in range(min(count, len(candidates))):
            bid = self.rng.choice(candidates)
            candidates.remove(bid)
            offset = self.rng.randrange(node.block_size(bid))
            node.corrupt_block(bid, offset)
            corrupted.append(bid)
        return corrupted


def random_schedule(
    num_nodes: int,
    horizon_s: float,
    seed: int,
    crashes: int = 2,
    blips: int = 2,
    slow_windows: int = 1,
    drop_windows: int = 1,
    corruptions: int = 1,
    max_concurrent_down: int = 1,
    mean_downtime_s: float | None = None,
    crash_points: tuple[str, ...] = (),
    overloads: int = 0,
    slow_bursts: int = 0,
    membership: int = 0,
    tenant_storms: int = 0,
    partitions: int = 0,
    asym_links: int = 0,
    fail_slows: int = 0,
) -> list[FaultEvent]:
    """Generate a reproducible random fault schedule.

    Crash/restore pairs and blips are placed so that at most
    ``max_concurrent_down`` nodes are ever dead at once (keeping the
    workload inside the code's erasure tolerance is the caller's job —
    with RS(9,6) up to 3 concurrent losses are recoverable).  All
    placement comes from ``random.Random(seed)``, so the same arguments
    always produce the same schedule.
    """
    rng = random.Random(seed)
    events: list[FaultEvent] = []
    # Non-overlapping downtime windows, assigned to random nodes.
    downtime = mean_downtime_s if mean_downtime_s is not None else horizon_s / 10.0
    windows: list[tuple[float, float, int]] = []  # (start, end, node)

    def place_window(length: float) -> tuple[float, float, int] | None:
        for _ in range(50):
            start = rng.uniform(0.0, max(1e-9, horizon_s - length))
            end = start + length
            concurrent = sum(1 for s, e, _n in windows if s < end and start < e)
            if concurrent >= max_concurrent_down:
                continue
            busy_nodes = {n for s, e, n in windows if s < end and start < e}
            free = [n for n in range(num_nodes) if n not in busy_nodes]
            if not free:
                continue
            node = rng.choice(free)
            windows.append((start, end, node))
            return start, end, node
        return None

    for _ in range(crashes):
        placed = place_window(rng.uniform(0.5, 1.5) * downtime)
        if placed is None:
            continue
        start, end, node = placed
        events.append(FaultEvent(at=start, kind="crash", node_id=node))
        events.append(FaultEvent(at=end, kind="restore", node_id=node))
    for _ in range(blips):
        length = rng.uniform(0.1, 0.4) * downtime
        placed = place_window(length)
        if placed is None:
            continue
        start, _end, node = placed
        events.append(FaultEvent(at=start, kind="blip", node_id=node, duration=length))
    for _ in range(slow_windows):
        events.append(
            FaultEvent(
                at=rng.uniform(0.0, horizon_s),
                kind="slow",
                node_id=rng.randrange(num_nodes),
                duration=rng.uniform(0.2, 0.6) * horizon_s,
                factor=rng.uniform(2.0, 8.0),
            )
        )
    for _ in range(drop_windows):
        events.append(
            FaultEvent(
                at=rng.uniform(0.0, horizon_s),
                kind="drop",
                node_id=rng.randrange(num_nodes),
                duration=rng.uniform(0.1, 0.3) * horizon_s,
                rate=rng.uniform(0.05, 0.3),
            )
        )
    for _ in range(corruptions):
        events.append(
            FaultEvent(
                at=rng.uniform(0.0, horizon_s),
                kind="corrupt",
                node_id=rng.randrange(num_nodes),
            )
        )
    for point in crash_points:
        # Arm a WAL crash point at a random time; whichever coordinator
        # next reaches that stage of a Put/Delete dies there.
        events.append(
            FaultEvent(
                at=rng.uniform(0.0, horizon_s),
                kind="crashpoint",
                node_id=-1,
                point=point,
            )
        )
    # New fault families draw strictly after the pre-existing ones so a
    # schedule generated with overloads=slow_bursts=0 is bit-identical
    # to what this seed always produced.
    for _ in range(overloads):
        events.append(
            FaultEvent(
                at=rng.uniform(0.0, horizon_s * 0.7),
                kind="overload",
                node_id=rng.randrange(num_nodes),
                duration=rng.uniform(0.1, 0.3) * horizon_s,
                rate=rng.uniform(200.0, 1000.0),
            )
        )
    for _ in range(slow_bursts):
        events.append(
            FaultEvent(
                at=rng.uniform(0.0, horizon_s),
                kind="slow_burst",
                node_id=rng.randrange(num_nodes),
                duration=rng.uniform(0.02, 0.08) * horizon_s,
                factor=rng.uniform(4.0, 16.0),
            )
        )
    # Membership churn (join / drain / flapping node) draws strictly
    # after every earlier family for the same bit-identity guarantee.
    # Events land in the first 80% of the horizon so the tail of the
    # workload exercises the post-churn topology.
    for _ in range(membership):
        kind = rng.choice(("join", "drain", "flap"))
        at = rng.uniform(0.05, 0.8) * horizon_s
        if kind == "join":
            events.append(FaultEvent(at=at, kind="join", node_id=-1))
        elif kind == "drain":
            events.append(
                FaultEvent(at=at, kind="drain", node_id=rng.randrange(num_nodes))
            )
        else:
            length = rng.uniform(0.05, 0.15) * horizon_s
            events.append(
                FaultEvent(
                    at=at,
                    kind="flap",
                    node_id=rng.randrange(num_nodes),
                    duration=length,
                    # 2-5 full crash/restore cycles inside the window.
                    rate=rng.uniform(2.0, 5.0) / length,
                )
            )
    # Tenant storms draw strictly after every earlier family (same
    # bit-identity guarantee for old seeds).  Tenant ids are assigned
    # deterministically by index, not drawn, so adding naming schemes
    # later cannot shift the RNG stream either.
    for i in range(tenant_storms):
        events.append(
            FaultEvent(
                at=rng.uniform(0.0, horizon_s * 0.7),
                kind="tenant_storm",
                node_id=rng.randrange(num_nodes),
                duration=rng.uniform(0.1, 0.3) * horizon_s,
                rate=rng.uniform(200.0, 1000.0),
                tenant=f"storm-{i}",
            )
        )
    # Partition / asymmetric-link / fail-slow families draw strictly
    # after every earlier family (the same append-only RNG discipline:
    # old seeds with these counts at 0 replay bit-identically).
    for _ in range(partitions):
        # Minority side: 1 .. floor((n-1)/2) nodes, so the complement is
        # always a strict majority and quorum-guarded metadata stays
        # writable from side B.
        size = rng.randrange(1, max(2, (num_nodes + 1) // 2))
        side = tuple(sorted(rng.sample(range(num_nodes), min(size, num_nodes))))
        events.append(
            FaultEvent(
                at=rng.uniform(0.0, horizon_s * 0.6),
                kind="partition",
                node_id=side[0],
                nodes=side,
                duration=rng.uniform(0.1, 0.3) * horizon_s,
            )
        )
    for _ in range(asym_links):
        if num_nodes < 2:
            break  # no draws at all: a 1-node cluster has no links
        src = rng.randrange(num_nodes)
        dst = rng.randrange(num_nodes - 1)
        if dst >= src:
            dst += 1
        events.append(
            FaultEvent(
                at=rng.uniform(0.0, horizon_s * 0.7),
                kind="asym_link",
                node_id=src,
                peer=dst,
                duration=rng.uniform(0.1, 0.3) * horizon_s,
                rate=rng.uniform(0.05, 0.4),
                latency_s=rng.uniform(0.001, 0.01),
            )
        )
    for _ in range(fail_slows):
        events.append(
            FaultEvent(
                at=rng.uniform(0.0, horizon_s * 0.6),
                kind="fail_slow",
                node_id=rng.randrange(num_nodes),
                duration=rng.uniform(0.2, 0.5) * horizon_s,
                factor=rng.uniform(8.0, 32.0),
            )
        )
    return sorted(events, key=lambda ev: ev.at)
