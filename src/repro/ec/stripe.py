"""Stripe-level erasure coding with variable-sized data blocks.

The paper's key storage-layer mechanic (Figure 2): a stripe holds ``k`` data
blocks which may have *different* sizes.  Parity can only be computed over
equal-sized buffers, so every data block is implicitly padded with zeros to
the size of the stripe's largest block, and each of the ``n - k`` parity
blocks materialises at that maximum size.  The zero padding of data blocks
is *implicit* — it is never stored or transferred — but parity blocks are
stored in full, so stripe storage overhead is::

    overhead = (n - k) * max_block_size / sum(data_block_sizes)

which is minimised when the blocks are equal-sized (the conventional
fixed-block layout) and can degrade to ``n - k`` when one block dominates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ec.reed_solomon import CodeParams, DecodeError, get_coder


@dataclass(frozen=True)
class StripeShapeStats:
    """Size accounting for one stripe of variable-sized data blocks."""

    data_sizes: tuple[int, ...]
    parity_count: int

    @property
    def max_block(self) -> int:
        return max(self.data_sizes) if self.data_sizes else 0

    @property
    def data_bytes(self) -> int:
        return sum(self.data_sizes)

    @property
    def parity_bytes(self) -> int:
        return self.parity_count * self.max_block

    @property
    def stored_bytes(self) -> int:
        """Bytes physically stored: plaintext data plus full-size parity."""
        return self.data_bytes + self.parity_bytes

    @property
    def overhead(self) -> float:
        """Storage overhead ratio ``parity_bytes / data_bytes``."""
        if self.data_bytes == 0:
            return 0.0
        return self.parity_bytes / self.data_bytes


@dataclass
class EncodedStripe:
    """A stripe after erasure coding.

    ``data_blocks`` keep their original (unpadded) sizes; ``parity_blocks``
    all have the size of the largest data block.
    """

    params: CodeParams
    data_blocks: list[np.ndarray]
    parity_blocks: list[np.ndarray]
    stats: StripeShapeStats = field(init=False)

    def __post_init__(self) -> None:
        self.stats = StripeShapeStats(
            data_sizes=tuple(int(b.size) for b in self.data_blocks),
            parity_count=len(self.parity_blocks),
        )

    @property
    def n(self) -> int:
        return self.params.n

    @property
    def k(self) -> int:
        return self.params.k

    def shards(self) -> list[np.ndarray]:
        """All ``n`` blocks in stripe order (data first, then parity)."""
        return list(self.data_blocks) + list(self.parity_blocks)


def _pad_to(block: np.ndarray, size: int) -> np.ndarray:
    if block.size == size:
        return block
    out = np.zeros(size, dtype=np.uint8)
    out[: block.size] = block
    return out


def encode_stripe(params: CodeParams, data_blocks: list[np.ndarray]) -> EncodedStripe:
    """Erasure-code one stripe of up to ``k`` variable-sized data blocks.

    Fewer than ``k`` blocks may be supplied (a trailing, partially-filled
    stripe); the missing blocks are treated as empty.
    """
    if not data_blocks:
        raise ValueError("stripe must contain at least one data block")
    if len(data_blocks) > params.k:
        raise ValueError(f"stripe holds at most k={params.k} data blocks, got {len(data_blocks)}")
    blocks = [np.ascontiguousarray(b, dtype=np.uint8) for b in data_blocks]
    while len(blocks) < params.k:
        blocks.append(np.zeros(0, dtype=np.uint8))

    max_size = max(b.size for b in blocks)
    if max_size == 0:
        raise ValueError("stripe data blocks are all empty")
    # Build the zero-padded (k, max_size) stripe matrix directly so the
    # coder runs one whole-stripe matmul without re-stacking per block.
    stacked = np.zeros((params.k, max_size), dtype=np.uint8)
    for i, block in enumerate(blocks):
        stacked[i, : block.size] = block
    parity = get_coder(params).encode(stacked)
    return EncodedStripe(params=params, data_blocks=blocks, parity_blocks=parity)


def decode_stripe(
    params: CodeParams,
    shards: list[np.ndarray | None],
    data_sizes: list[int],
) -> list[np.ndarray]:
    """Reconstruct the original (unpadded) data blocks of a stripe.

    ``shards`` lists all ``n`` blocks in stripe order with ``None`` for lost
    blocks.  Surviving data blocks may be passed at their stored (unpadded)
    size; they are re-padded internally.  ``data_sizes`` gives the original
    size of each data block so padding can be stripped after recovery.
    """
    if len(shards) != params.n:
        raise ValueError(f"expected {params.n} shards, got {len(shards)}")
    if len(data_sizes) != params.k:
        raise ValueError(f"expected {params.k} data sizes, got {len(data_sizes)}")

    present_sizes = [s.size for s in shards if s is not None]
    if not present_sizes:
        raise DecodeError("no surviving shards")
    max_size = max(max(present_sizes), max(data_sizes))

    padded: list[np.ndarray | None] = []
    for shard in shards:
        if shard is None:
            padded.append(None)
        else:
            arr = np.ascontiguousarray(shard, dtype=np.uint8)
            padded.append(_pad_to(arr, max_size))

    recovered = get_coder(params).decode(padded)
    return [recovered[i][: data_sizes[i]].copy() for i in range(params.k)]


def fixed_stripe_stats(params: CodeParams, total_bytes: int, block_size: int) -> StripeShapeStats:
    """Size accounting for the conventional fixed-block layout of an object.

    Models how a MinIO/Ceph-like system would stripe ``total_bytes`` into
    ``block_size`` blocks: full stripes of ``k`` equal blocks plus one
    trailing partial stripe.
    """
    if block_size <= 0:
        raise ValueError("block size must be positive")
    sizes: list[int] = []
    remaining = total_bytes
    while remaining > 0:
        take = min(block_size, remaining)
        sizes.append(take)
        remaining -= take
    # Group into stripes of k; overhead accrues per stripe.
    parity_bytes = 0
    for start in range(0, len(sizes), params.k):
        stripe_sizes = sizes[start : start + params.k]
        parity_bytes += params.parity * max(stripe_sizes)
    return StripeShapeStats(data_sizes=tuple(sizes), parity_count=0) if total_bytes == 0 else _stats_from(
        sizes, parity_bytes
    )


@dataclass(frozen=True)
class _AggregateStats(StripeShapeStats):
    """Aggregated multi-stripe stats where parity bytes are precomputed."""

    explicit_parity_bytes: int = 0

    @property
    def parity_bytes(self) -> int:  # type: ignore[override]
        return self.explicit_parity_bytes


def _stats_from(sizes: list[int], parity_bytes: int) -> StripeShapeStats:
    return _AggregateStats(
        data_sizes=tuple(sizes), parity_count=0, explicit_parity_bytes=parity_bytes
    )
