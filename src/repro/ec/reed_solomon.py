"""Systematic Reed-Solomon erasure coding.

An ``(n, k)`` systematic code stores the ``k`` original data blocks in
plaintext and adds ``n - k`` parity blocks, tolerating the loss of any
``n - k`` blocks.  The encoding matrix is a systematic normalized Cauchy
matrix — the construction used by production coders (Jerasure, ISA-L) —
which guarantees every ``k x k`` submatrix used in recovery is invertible
and makes the first parity row a plain XOR of the data blocks.

The coder operates on equal-length uint8 blocks; callers that need
variable-sized blocks (Fusion stripes) pad to the maximum block size via
:mod:`repro.ec.stripe`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ec import gf256


class DecodeError(Exception):
    """Raised when a stripe cannot be reconstructed from surviving blocks."""


def build_encoding_matrix(n: int, k: int) -> np.ndarray:
    """Return the ``n x k`` systematic encoding matrix for an (n, k) code.

    The first ``k`` rows form the identity; the remaining ``n - k`` rows
    are the parity coefficients of a *normalized Cauchy* matrix (the
    ISA-L ``gf_gen_cauchy1``-style construction): every square submatrix
    of a Cauchy matrix is nonsingular, and diagonal row/column scaling
    preserves that, so the code is MDS.  Normalizing the first parity
    row to all ones makes the first parity shard a plain XOR of the data
    shards (RAID-5-compatible), which both encoding and single-loss
    recovery exploit as a gather-free fast path.
    """
    if not (0 < k < n):
        raise ValueError(f"invalid code parameters (n={n}, k={k})")
    if n > gf256.FIELD_SIZE:
        raise ValueError(f"n={n} exceeds GF(2^8) field size")
    r = n - k
    cauchy = np.zeros((r, k), dtype=np.uint8)
    for i in range(r):
        for j in range(k):
            cauchy[i, j] = gf256.gf_inv(i ^ (r + j))
    # Scale each row so column 0 is all ones, then each column so row 0
    # is all ones (column 0 stays ones because entry (0, 0) is then 1).
    for i in range(r):
        cauchy[i] = gf256.gf_mul_bytes(gf256.gf_inv(int(cauchy[i, 0])), cauchy[i])
    for j in range(k):
        scale = gf256.gf_inv(int(cauchy[0, j]))
        for i in range(r):
            cauchy[i, j] = gf256.gf_mul(scale, int(cauchy[i, j]))
    out = np.zeros((n, k), dtype=np.uint8)
    out[:k] = np.eye(k, dtype=np.uint8)
    out[k:] = cauchy
    return out


@dataclass(frozen=True)
class CodeParams:
    """Erasure code parameters ``(n, k)``.

    ``n`` is the total number of blocks per stripe and ``k`` the number of
    data blocks; the code tolerates ``n - k`` lost blocks.
    """

    n: int
    k: int

    def __post_init__(self) -> None:
        if not (0 < self.k < self.n):
            raise ValueError(f"invalid code parameters {self}")

    @property
    def parity(self) -> int:
        """Number of parity blocks per stripe."""
        return self.n - self.k

    @property
    def optimal_overhead(self) -> float:
        """The optimal storage overhead ``(n - k) / k`` (e.g. 0.5 for RS(9,6))."""
        return (self.n - self.k) / self.k

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"RS({self.n},{self.k})"


#: The paper's default code.
RS_9_6 = CodeParams(9, 6)
#: The paper's alternative wide code.
RS_14_10 = CodeParams(14, 10)


class ReedSolomon:
    """Encoder/decoder for one ``(n, k)`` systematic Reed-Solomon code."""

    def __init__(self, params: CodeParams) -> None:
        self.params = params
        self.matrix = build_encoding_matrix(params.n, params.k)
        # Recovery matrices memoised per surviving-shard set: repair and
        # degraded reads hit the same few loss patterns over and over,
        # and GF(2^8) Gaussian elimination dominates small-stripe decode.
        # At most C(n, k) entries (84 for RS(9,6)), so no bound needed.
        self._inversion_cache: dict[tuple[int, ...], np.ndarray] = {}

    def _recovery_matrix(self, rows: tuple[int, ...]) -> np.ndarray:
        """Inverse of the encoding submatrix for one surviving-shard set."""
        inv = self._inversion_cache.get(rows)
        if inv is None:
            inv = gf256.gf_mat_inv(self.matrix[list(rows), :])
            self._inversion_cache[rows] = inv
        return inv

    def encode(self, data_blocks: list[np.ndarray] | np.ndarray) -> list[np.ndarray]:
        """Compute the ``n - k`` parity blocks for ``k`` equal-sized blocks.

        ``data_blocks`` may be a list of ``k`` equal-sized uint8 arrays or
        an already-stacked ``(k, size)`` matrix (the stripe layer builds
        the padded matrix directly to avoid one copy).  Returns only the
        parity blocks; the data blocks are stored verbatim (the code is
        systematic).  All parity for the stripe is produced by a single
        GF(2^8) matrix product over the whole stacked stripe.
        """
        k = self.params.k
        if isinstance(data_blocks, np.ndarray) and data_blocks.ndim == 2:
            if data_blocks.shape[0] != k:
                raise ValueError(f"expected {k} data blocks, got {data_blocks.shape[0]}")
            stacked = np.ascontiguousarray(data_blocks, dtype=np.uint8)
        else:
            if len(data_blocks) != k:
                raise ValueError(f"expected {k} data blocks, got {len(data_blocks)}")
            sizes = {block.size for block in data_blocks}
            if len(sizes) != 1:
                raise ValueError(f"data blocks must be equal-sized, got sizes {sorted(sizes)}")
            stacked = np.empty((k, data_blocks[0].size), dtype=np.uint8)
            for i, block in enumerate(data_blocks):
                stacked[i] = block
        parity = gf256.gf_matmul_blocks(self.matrix[k:], stacked)
        return [parity[i] for i in range(self.params.parity)]

    def decode(self, shards: list[np.ndarray | None]) -> list[np.ndarray]:
        """Reconstruct the ``k`` data blocks from any ``k`` surviving shards.

        ``shards`` is the full stripe in index order (data blocks first, then
        parity); missing blocks are ``None``.  Returns the ``k`` recovered
        data blocks.  Only the *missing* data rows are recomputed (one
        matrix product of the relevant inverse rows against the stacked
        survivors); surviving data blocks pass through untouched, so a
        single-shard repair does ~k× less field arithmetic than a full
        stripe re-solve.
        """
        n, k = self.params.n, self.params.k
        if len(shards) != n:
            raise ValueError(f"expected {n} shards, got {len(shards)}")
        present = [i for i, s in enumerate(shards) if s is not None]
        if len(present) < k:
            raise DecodeError(
                f"unrecoverable stripe: only {len(present)} of {n} shards "
                f"survive but {k} are required"
            )

        # Fast path: all data blocks intact.
        if all(shards[i] is not None for i in range(k)):
            return [np.ascontiguousarray(shards[i], dtype=np.uint8) for i in range(k)]

        rows = tuple(present[:k])
        inv = self._recovery_matrix(rows)
        size = shards[rows[0]].size  # type: ignore[union-attr]
        survivors = np.empty((k, size), dtype=np.uint8)
        for j, shard_idx in enumerate(rows):
            survivors[j] = shards[shard_idx]
        missing = [i for i in range(k) if shards[i] is None]
        recovered = gf256.gf_matmul_blocks(inv[missing, :], survivors)
        out: list[np.ndarray] = []
        cursor = 0
        for i in range(k):
            if shards[i] is None:
                out.append(recovered[cursor])
                cursor += 1
            else:
                out.append(np.ascontiguousarray(shards[i], dtype=np.uint8))
        return out

    def verify(self, shards: list[np.ndarray]) -> bool:
        """Check that a full stripe is consistent (parity matches data)."""
        if len(shards) != self.params.n:
            return False
        expected = self.encode(list(shards[: self.params.k]))
        return all(
            np.array_equal(expected[i], shards[self.params.k + i])
            for i in range(self.params.parity)
        )


_CODER_CACHE: dict[CodeParams, ReedSolomon] = {}


def get_coder(params: CodeParams) -> ReedSolomon:
    """Return a cached coder for ``params`` (matrix construction is costly)."""
    coder = _CODER_CACHE.get(params)
    if coder is None:
        coder = ReedSolomon(params)
        _CODER_CACHE[params] = coder
    return coder
