"""Galois field GF(2^8) arithmetic.

This module provides finite-field arithmetic over GF(2^8) with the
conventional Rijndael/ISA-L generator polynomial ``x^8 + x^4 + x^3 + x^2 + 1``
(0x11D).  All bulk operations are table-driven and vectorised with numpy so
that erasure coding of multi-megabyte blocks stays fast in pure Python.

The field is exposed both as scalar helpers (``gf_mul``, ``gf_inv``) used by
matrix construction/inversion, and as bulk helpers (``gf_mul_bytes``,
``gf_addmul_bytes``) used on data buffers during encoding and recovery.
"""

from __future__ import annotations

import numpy as np

#: The irreducible polynomial x^8 + x^4 + x^3 + x^2 + 1 used for reduction.
PRIMITIVE_POLY = 0x11D

#: Number of elements in the field.
FIELD_SIZE = 256

#: Generator element used to build the exp/log tables.
GENERATOR = 2


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build exponentiation and logarithm tables for GF(2^8).

    Returns ``(exp, log)`` where ``exp`` has 512 entries (doubled so that
    ``exp[log[a] + log[b]]`` never needs an explicit modulo) and ``log`` has
    256 entries with ``log[0]`` left as 0 (log of zero is undefined; callers
    must special-case zero).
    """
    exp = np.zeros(2 * FIELD_SIZE, dtype=np.int32)
    log = np.zeros(FIELD_SIZE, dtype=np.int32)
    x = 1
    for i in range(FIELD_SIZE - 1):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    for i in range(FIELD_SIZE - 1, 2 * FIELD_SIZE):
        exp[i] = exp[i - (FIELD_SIZE - 1)]
    return exp, log


_EXP, _LOG = _build_tables()

#: 256x256 multiplication table; ``_MUL[a, b] == a * b`` in GF(2^8).
_MUL = np.zeros((FIELD_SIZE, FIELD_SIZE), dtype=np.uint8)
_a = np.arange(FIELD_SIZE)
for _row in range(1, FIELD_SIZE):
    _MUL[_row, 1:] = _EXP[_LOG[_row] + _LOG[_a[1:]]].astype(np.uint8)
del _a, _row


def gf_add(a: int, b: int) -> int:
    """Add two field elements (XOR in characteristic 2)."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements."""
    if a == 0 or b == 0:
        return 0
    return int(_EXP[_LOG[a] + _LOG[b]])


def gf_div(a: int, b: int) -> int:
    """Divide ``a`` by ``b``; raises ``ZeroDivisionError`` when ``b`` is 0."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return int(_EXP[_LOG[a] - _LOG[b] + (FIELD_SIZE - 1)])


def gf_inv(a: int) -> int:
    """Multiplicative inverse of ``a``; raises for 0."""
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(2^8)")
    return int(_EXP[(FIELD_SIZE - 1) - _LOG[a]])


def gf_pow(a: int, n: int) -> int:
    """Raise ``a`` to the integer power ``n`` (n >= 0)."""
    if n == 0:
        return 1
    if a == 0:
        return 0
    return int(_EXP[(_LOG[a] * n) % (FIELD_SIZE - 1)])


def gf_mul_bytes(coeff: int, data: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``data`` by the scalar ``coeff``.

    ``data`` must be a uint8 array; a new uint8 array is returned.
    """
    if coeff == 0:
        return np.zeros_like(data)
    if coeff == 1:
        return data.copy()
    return _MUL[coeff][data]


def gf_addmul_bytes(acc: np.ndarray, coeff: int, data: np.ndarray) -> None:
    """In-place ``acc ^= coeff * data`` over uint8 arrays.

    This is the inner loop of Reed-Solomon encoding: accumulating one
    source block scaled by one matrix coefficient into a parity block.
    """
    if coeff == 0:
        return
    if coeff == 1:
        np.bitwise_xor(acc, data, out=acc)
        return
    np.bitwise_xor(acc, _MUL[coeff][data], out=acc)


#: Lazily-built 65536-entry lane tables for the whole-stripe matmul.  The
#: key is a tuple of 1, 2, or up to 4 coefficients; entry ``v`` holds, in
#: consecutive 16-bit lanes, the products of each coefficient with the
#: little-endian byte *pair* ``v``.  Gathering pairs halves the element
#: count versus a per-byte ``_MUL`` gather, and packing up to four output
#: rows per lane-table means one gather feeds four parity shards at once
#: (XOR lanes never carry into each other).  Encoding matrices contain a
#: handful of distinct columns, so the cache stays tiny.
_LANE_TABLES: dict[tuple[int, ...], np.ndarray] = {}

_LANE_DTYPES = {1: np.uint16, 2: np.uint32, 3: np.uint64, 4: np.uint64}

_LITTLE_ENDIAN = np.dtype(np.uint16).newbyteorder("=") == np.dtype("<u2")

#: Byte-pairs per matmul tile (128 KiB of shard data).  Gathers are only
#: fast while the 256-512 KiB lane table stays cache-resident; streaming
#: whole multi-MB shards through one gather evicts it between lookups
#: (measured ~3x slower at 4 MiB shards), so the product is computed in
#: column tiles whose index/accumulator working set fits alongside it.
_TILE_PAIRS = 1 << 16


def _lane_table(coeffs: tuple[int, ...]) -> np.ndarray:
    table = _LANE_TABLES.get(coeffs)
    if table is None:
        dtype = _LANE_DTYPES[len(coeffs)]
        table = np.zeros(FIELD_SIZE * FIELD_SIZE, dtype=dtype)
        for lane, coeff in enumerate(coeffs):
            row = _MUL[coeff].astype(np.uint16)
            pair = np.tile(row, FIELD_SIZE) | (np.repeat(row, FIELD_SIZE) << 8)
            table |= pair.astype(dtype) << dtype(16 * lane)
        _LANE_TABLES[coeffs] = table
    return table


def gf_matmul_blocks(matrix: np.ndarray, blocks: np.ndarray) -> np.ndarray:
    """GF(2^8) product of a small coefficient matrix with a block matrix.

    ``matrix`` is ``(r, k)`` uint8 coefficients and ``blocks`` a ``(k, L)``
    uint8 matrix whose rows are whole shards.  Returns the ``(r, L)``
    product.  This is the Reed-Solomon inner loop: output rows are
    produced in groups of up to four, each group accumulated with one
    lane-table gather per input shard over uint16 byte-pairs.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    blocks = np.ascontiguousarray(blocks, dtype=np.uint8)
    if matrix.ndim != 2 or blocks.ndim != 2 or matrix.shape[1] != blocks.shape[0]:
        raise ValueError(f"shape mismatch: {matrix.shape} @ {blocks.shape}")
    r, k = matrix.shape
    L = blocks.shape[1]
    if r == 0 or L == 0:
        return np.zeros((r, L), dtype=np.uint8)
    if not _LITTLE_ENDIAN:
        return gf_matmul(matrix, blocks)
    if L & 1:
        work = np.zeros((k, L + 1), dtype=np.uint8)
        work[:, :L] = blocks
    else:
        work = blocks
    pairs = work.view(np.uint16)
    half = pairs.shape[1]
    out = np.empty((r, half), dtype=np.uint16)
    # Rows whose coefficients are all 0/1 (the all-ones Cauchy parity row,
    # identity-derived inverse rows) need no gathers at all — just XOR.
    xor_rows = [i for i in range(r) if int(matrix[i].max(initial=0)) <= 1]
    dense_rows = [i for i in range(r) if int(matrix[i].max(initial=0)) > 1]
    for i in xor_rows:
        acc16 = np.zeros(half, dtype=np.uint16)
        for j in range(k):
            if matrix[i, j]:
                acc16 ^= pairs[j]
        out[i] = acc16
    # Dense rows go in groups of up to 4 lanes; lane tables are resolved
    # once per (group, shard) up front, then the product runs tile by
    # tile so tables and accumulators stay cache-resident.  Gather
    # indices are cast to intp once per shard per tile and shared by
    # every group (numpy would otherwise re-cast per gather).
    groups: list[tuple[list[int], list[np.ndarray | None]]] = []
    for base in range(0, len(dense_rows), 4):
        group = dense_rows[base : base + 4]
        tables: list[np.ndarray | None] = []
        for j in range(k):
            coeffs = tuple(int(matrix[i, j]) for i in group)
            tables.append(_lane_table(coeffs) if any(coeffs) else None)
        groups.append((group, tables))
    indices: list[np.ndarray | None] = [None] * k
    for lo in range(0, half, _TILE_PAIRS):
        hi = min(lo + _TILE_PAIRS, half)
        for j in range(k):
            indices[j] = None
        for group, tables in groups:
            acc = np.zeros(hi - lo, dtype=_LANE_DTYPES[len(group)])
            for j in range(k):
                table = tables[j]
                if table is None:
                    continue
                idx = indices[j]
                if idx is None:
                    idx = indices[j] = pairs[j, lo:hi].astype(np.intp)
                acc ^= np.take(table, idx)
            if len(group) == 1:
                out[group[0], lo:hi] = acc
            else:
                for lane, i in enumerate(group):
                    out[i, lo:hi] = (acc >> acc.dtype.type(16 * lane)).astype(np.uint16)
    result = out.view(np.uint8)[:, :L]
    return result if result.flags.c_contiguous else np.ascontiguousarray(result)


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product of two GF(2^8) matrices given as uint8 2-D arrays."""
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for i in range(a.shape[0]):
        row = np.zeros(b.shape[1], dtype=np.uint8)
        for k in range(a.shape[1]):
            coeff = int(a[i, k])
            if coeff:
                gf_addmul_bytes(row, coeff, b[k])
        out[i] = row
    return out


def gf_mat_inv(matrix: np.ndarray) -> np.ndarray:
    """Invert a square GF(2^8) matrix by Gauss-Jordan elimination.

    Raises ``ValueError`` when the matrix is singular.
    """
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("matrix must be square")
    # Work on an augmented [M | I] matrix of Python ints for clarity.
    aug = np.zeros((n, 2 * n), dtype=np.uint8)
    aug[:, :n] = matrix
    aug[:, n:] = np.eye(n, dtype=np.uint8)

    for col in range(n):
        # Find a pivot row.
        pivot = -1
        for row in range(col, n):
            if aug[row, col] != 0:
                pivot = row
                break
        if pivot < 0:
            raise ValueError("matrix is singular over GF(2^8)")
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        # Normalise the pivot row.
        inv = gf_inv(int(aug[col, col]))
        aug[col] = gf_mul_bytes(inv, aug[col])
        # Eliminate the column from all other rows.
        for row in range(n):
            if row != col and aug[row, col] != 0:
                coeff = int(aug[row, col])
                gf_addmul_bytes(aug[row], coeff, aug[col])
    return aug[:, n:].copy()


def gf_vandermonde(rows: int, cols: int) -> np.ndarray:
    """Build a ``rows x cols`` Vandermonde matrix ``V[i, j] = i^j``."""
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = gf_pow(i, j)
    return out
