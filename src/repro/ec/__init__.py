"""Erasure coding substrate: GF(2^8) arithmetic and systematic Reed-Solomon.

Public API:

* :class:`repro.ec.reed_solomon.CodeParams` — ``(n, k)`` code parameters,
  with the paper's defaults :data:`RS_9_6` and :data:`RS_14_10`.
* :class:`repro.ec.reed_solomon.ReedSolomon` — encoder/decoder.
* :func:`repro.ec.stripe.encode_stripe` / :func:`repro.ec.stripe.decode_stripe`
  — variable-block stripes with implicit zero padding (Fusion's layout).
"""

from repro.ec.reed_solomon import (
    RS_9_6,
    RS_14_10,
    CodeParams,
    DecodeError,
    ReedSolomon,
    get_coder,
)
from repro.ec.stripe import (
    EncodedStripe,
    StripeShapeStats,
    decode_stripe,
    encode_stripe,
)

__all__ = [
    "RS_9_6",
    "RS_14_10",
    "CodeParams",
    "DecodeError",
    "ReedSolomon",
    "get_coder",
    "EncodedStripe",
    "StripeShapeStats",
    "decode_stripe",
    "encode_stripe",
]
