"""NYC yellow-taxi dataset generator (2015-2017 trips).

Matches the paper's 20-column taxi Parquet file: trip records whose
columns are more uniform in size than lineitem's (Figure 4c).  Two columns
matter for the real-world queries Q3/Q4: ``date`` has a *low* compression
ratio (diverse day values) so projection pushdown stays profitable even at
37.5% selectivity, while ``fare`` is *highly* compressed (most fares are
standard amounts), making its pushdown unprofitable at 6.3% selectivity —
exactly the Cost Equation contrast in Section 6.2.
"""

from __future__ import annotations

import numpy as np

from repro.format.compression import DEFAULT_CODEC
from repro.format.schema import ColumnType
from repro.format.table import Table
from repro.format.writer import write_table
from repro.sql.dates import date_to_days
from repro.workloads.text import pick

DEFAULT_ROWS = 48_000
DEFAULT_ROW_GROUP_ROWS = 3_000  # paper: 16 row groups

#: Trips span 2015-01-01 .. 2017-09-01 (32 months) so that the paper's
#: Q3 cutoff 2015-12-31 selects ~12/32 = 37.5% of rows.
DATE_START = "2015-01-01"
DATE_END = "2017-09-01"

#: Standard flat fares dominate (JFK flat rate etc.), compressing the
#: fare column heavily.
_STANDARD_FARES = np.array([6.5, 8.0, 9.5, 11.0, 12.5, 52.0, 59.0, 70.0])

COLUMN_NAMES = [
    "vendor_id",
    "date",
    "pickup_time",
    "dropoff_time",
    "passenger_count",
    "trip_distance",
    "pickup_longitude",
    "pickup_latitude",
    "rate_code",
    "store_and_fwd",
    "dropoff_longitude",
    "dropoff_latitude",
    "payment_type",
    "fare",
    "extra",
    "mta_tax",
    "tip_amount",
    "tolls_amount",
    "total_amount",
    "trip_duration",
]


def taxi_table(num_rows: int = DEFAULT_ROWS, seed: int = 7) -> Table:
    """Generate the 20-column taxi trips table."""
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    rng = np.random.default_rng(seed)

    day_lo = date_to_days(DATE_START)
    day_hi = date_to_days(DATE_END)
    # Dates are deliberately *unsorted* within the file: the paper's taxi
    # date column compresses poorly (ratio 1.6) because day values are
    # diverse within each chunk, which keeps Q3's projection pushdown
    # profitable even at 37.5% selectivity.
    date = rng.integers(day_lo, day_hi, size=num_rows)
    pickup_time = date.astype(np.int64) * 86_400 + rng.integers(0, 86_400, size=num_rows)
    trip_duration = rng.integers(120, 5_400, size=num_rows)
    dropoff_time = pickup_time + trip_duration

    passenger_count = rng.choice(
        np.arange(1, 7), size=num_rows, p=[0.70, 0.14, 0.06, 0.04, 0.04, 0.02]
    )
    trip_distance = np.round(rng.gamma(2.2, 1.4, size=num_rows), 2)
    pickup_longitude = np.round(-73.98 + rng.normal(0, 0.04, size=num_rows), 6)
    pickup_latitude = np.round(40.75 + rng.normal(0, 0.03, size=num_rows), 6)
    dropoff_longitude = np.round(-73.97 + rng.normal(0, 0.05, size=num_rows), 6)
    dropoff_latitude = np.round(40.75 + rng.normal(0, 0.04, size=num_rows), 6)

    # Nearly all fares are standard amounts with a heavily skewed mix
    # (metered fares are rounded to whole dollars), giving the fare column
    # the very high compression ratio the paper reports (152x there; the
    # Cost Equation only needs selectivity x ratio > 1 at Q4's 6.3%).
    standard = rng.random(num_rows) < 0.995
    fare = np.where(
        standard,
        rng.choice(_STANDARD_FARES, size=num_rows, p=[0.62, 0.2, 0.09, 0.045, 0.025, 0.011, 0.006, 0.003]),
        np.minimum(60.0, np.round((2.5 + trip_distance * 2.5) / 10) * 10),
    )
    extra = rng.choice(np.array([0.0, 0.5, 1.0]), size=num_rows, p=[0.5, 0.3, 0.2])
    mta_tax = np.full(num_rows, 0.5)
    tip_amount = np.round(np.where(rng.random(num_rows) < 0.6, fare * 0.2, 0.0), 2)
    tolls_amount = rng.choice(np.array([0.0, 5.54, 12.5]), size=num_rows, p=[0.9, 0.07, 0.03])
    total_amount = np.round(fare + extra + mta_tax + tip_amount + tolls_amount, 2)

    return Table.from_dict(
        {
            "vendor_id": (ColumnType.INT64, rng.integers(1, 3, size=num_rows)),
            "date": (ColumnType.DATE, date),
            "pickup_time": (ColumnType.INT64, pickup_time),
            "dropoff_time": (ColumnType.INT64, dropoff_time),
            "passenger_count": (ColumnType.INT64, passenger_count),
            "trip_distance": (ColumnType.DOUBLE, trip_distance),
            "pickup_longitude": (ColumnType.DOUBLE, pickup_longitude),
            "pickup_latitude": (ColumnType.DOUBLE, pickup_latitude),
            "rate_code": (ColumnType.INT64, rng.choice(np.arange(1, 7), size=num_rows, p=[0.9, 0.04, 0.02, 0.02, 0.01, 0.01])),
            "store_and_fwd": (ColumnType.STRING, pick(rng, num_rows, ["N", "Y"], p=[0.99, 0.01])),
            "dropoff_longitude": (ColumnType.DOUBLE, dropoff_longitude),
            "dropoff_latitude": (ColumnType.DOUBLE, dropoff_latitude),
            "payment_type": (ColumnType.INT64, rng.choice(np.arange(1, 5), size=num_rows, p=[0.6, 0.35, 0.03, 0.02])),
            "fare": (ColumnType.DOUBLE, fare),
            "extra": (ColumnType.DOUBLE, extra),
            "mta_tax": (ColumnType.DOUBLE, mta_tax),
            "tip_amount": (ColumnType.DOUBLE, tip_amount),
            "tolls_amount": (ColumnType.DOUBLE, tolls_amount),
            "total_amount": (ColumnType.DOUBLE, total_amount),
            "trip_duration": (ColumnType.INT64, trip_duration),
        }
    )


def taxi_file(
    num_rows: int = DEFAULT_ROWS,
    row_group_rows: int = DEFAULT_ROW_GROUP_ROWS,
    codec: str = DEFAULT_CODEC,
    page_values: int = 500,
    seed: int = 7,
) -> tuple[bytes, Table]:
    """Generate the taxi table and serialise it to PAX bytes."""
    table = taxi_table(num_rows, seed)
    return (
        write_table(
            table, row_group_rows=row_group_rows, codec=codec, page_values=page_values
        ),
        table,
    )
