"""UK property-prices dataset generator (HM Land Registry price-paid data).

A 16-column mixed table: a few diverse string columns (addresses) among
many low-cardinality categoricals — the fourth chunk-size profile in the
paper's Figure 4c.
"""

from __future__ import annotations

import numpy as np

from repro.format.compression import DEFAULT_CODEC
from repro.format.schema import ColumnType
from repro.format.table import Table
from repro.format.writer import write_table
from repro.sql.dates import date_to_days
from repro.workloads.text import pick, random_codes

DEFAULT_ROWS = 20_000
DEFAULT_ROW_GROUP_ROWS = 1_334  # paper: 15 row groups x 16 columns = 240 chunks

_TOWNS = [f"TOWN-{i:03d}" for i in range(400)]
_DISTRICTS = [f"DISTRICT-{i:03d}" for i in range(120)]
_COUNTIES = [f"COUNTY-{i:02d}" for i in range(45)]
_STREET_SUFFIX = ["ROAD", "STREET", "LANE", "AVENUE", "CLOSE", "DRIVE", "WAY"]


def ukpp_table(num_rows: int = DEFAULT_ROWS, seed: int = 13) -> Table:
    """Generate the 16-column price-paid table."""
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    rng = np.random.default_rng(seed)

    price = np.round(np.exp(rng.normal(12.3, 0.6, size=num_rows))).astype(np.int64)
    day_lo = date_to_days("1995-01-01")
    day_hi = date_to_days("2023-01-01")
    date = rng.integers(day_lo, day_hi, size=num_rows)

    return Table.from_dict(
        {
            "transaction_id": (ColumnType.STRING, random_codes(rng, num_rows, "TX", 10**9)),
            "price": (ColumnType.INT64, price),
            "date": (ColumnType.DATE, date),
            "postcode": (ColumnType.STRING, _postcodes(rng, num_rows)),
            "property_type": (ColumnType.STRING, pick(rng, num_rows, ["D", "S", "T", "F", "O"])),
            "old_new": (ColumnType.STRING, pick(rng, num_rows, ["Y", "N"], p=[0.1, 0.9])),
            "duration": (ColumnType.STRING, pick(rng, num_rows, ["F", "L"], p=[0.75, 0.25])),
            "paon": (ColumnType.INT64, rng.integers(1, 300, size=num_rows)),
            "saon": (ColumnType.STRING, pick(rng, num_rows, ["", "FLAT 1", "FLAT 2", "FLAT 3"], p=[0.8, 0.08, 0.07, 0.05])),
            "street": (ColumnType.STRING, _streets(rng, num_rows)),
            "locality": (ColumnType.STRING, pick(rng, num_rows, _TOWNS[:150])),
            "town": (ColumnType.STRING, pick(rng, num_rows, _TOWNS)),
            "district": (ColumnType.STRING, pick(rng, num_rows, _DISTRICTS)),
            "county": (ColumnType.STRING, pick(rng, num_rows, _COUNTIES)),
            "ppd_category": (ColumnType.STRING, pick(rng, num_rows, ["A", "B"], p=[0.9, 0.1])),
            "record_status": (ColumnType.STRING, pick(rng, num_rows, ["A"])),
        }
    )


def _postcodes(rng: np.random.Generator, count: int) -> np.ndarray:
    letters = "ABCDEFGHJKLMNPRSTUWYZ"
    out = np.empty(count, dtype=object)
    a = rng.integers(0, len(letters), size=count)
    b = rng.integers(0, len(letters), size=count)
    n1 = rng.integers(1, 30, size=count)
    n2 = rng.integers(0, 10, size=count)
    c = rng.integers(0, len(letters), size=count)
    d = rng.integers(0, len(letters), size=count)
    for i in range(count):
        out[i] = f"{letters[a[i]]}{letters[b[i]]}{n1[i]} {n2[i]}{letters[c[i]]}{letters[d[i]]}"
    return out


def _streets(rng: np.random.Generator, count: int) -> np.ndarray:
    names = random_codes(rng, count, "ST", 40_000)
    suffix = pick(rng, count, _STREET_SUFFIX)
    out = np.empty(count, dtype=object)
    for i in range(count):
        out[i] = f"{names[i]} {suffix[i]}"
    return out


def ukpp_file(
    num_rows: int = DEFAULT_ROWS,
    row_group_rows: int = DEFAULT_ROW_GROUP_ROWS,
    codec: str = DEFAULT_CODEC,
    page_values: int = 500,
    seed: int = 13,
) -> tuple[bytes, Table]:
    """Generate the price-paid table and serialise it to PAX bytes."""
    table = ukpp_table(num_rows, seed)
    return (
        write_table(
            table, row_group_rows=row_group_rows, codec=codec, page_values=page_values
        ),
        table,
    )
