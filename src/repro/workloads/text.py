"""Synthetic text generation shared by dataset generators.

Comment/description columns drive the paper's large, poorly-compressible
column chunks (e.g. TPC-H ``l_comment``, recipeNLG ``directions``), so the
generated text must be diverse enough to resist dictionary encoding while
still looking like prose to the byte-level codec.
"""

from __future__ import annotations

import numpy as np

# A compact vocabulary in the spirit of TPC-H's text grammar.
_WORDS = (
    "furiously quickly slyly carefully blithely silent final ironic regular "
    "express bold pending unusual special even quiet brave daring fluffy "
    "accounts deposits requests instructions theodolites packages pinto "
    "beans foxes ideas dependencies platelets sheaves asymptotes courts "
    "dolphins multipliers sauternes warthogs sentiments excuses realms "
    "sleep wake cajole nag haggle boost detect integrate engage dazzle "
    "about above across after against along among around never always"
).split()


def random_sentences(
    rng: np.random.Generator,
    count: int,
    min_words: int = 6,
    max_words: int = 18,
) -> np.ndarray:
    """``count`` pseudo-prose strings of ``min_words..max_words`` words."""
    lengths = rng.integers(min_words, max_words + 1, size=count)
    total = int(lengths.sum())
    word_ids = rng.integers(0, len(_WORDS), size=total)
    out = np.empty(count, dtype=object)
    pos = 0
    for i in range(count):
        n = lengths[i]
        out[i] = " ".join(_WORDS[w] for w in word_ids[pos : pos + n])
        pos += n
    return out


def random_codes(rng: np.random.Generator, count: int, prefix: str, span: int) -> np.ndarray:
    """Identifier-like strings ``prefix-%09d`` drawn from ``span`` values."""
    ids = rng.integers(0, span, size=count)
    out = np.empty(count, dtype=object)
    for i, v in enumerate(ids):
        out[i] = f"{prefix}-{v:09d}"
    return out


def pick(rng: np.random.Generator, count: int, choices: list[str], p=None) -> np.ndarray:
    """Categorical string column drawn from ``choices``."""
    idx = rng.choice(len(choices), size=count, p=p)
    out = np.empty(count, dtype=object)
    for i, v in enumerate(idx):
        out[i] = choices[v]
    return out
