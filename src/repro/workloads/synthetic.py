"""Synthetic chunk-size profiles for layout-only experiments.

The storage-overhead sweeps (Figures 10a and 16a) operate purely on chunk
*sizes* — no data needs to exist.  These helpers generate size lists from
the paper's parameter ranges: 1-100 MB chunks, Zipfian or uniform
distributions, plus paper-scale per-column profiles for the split-fraction
experiment (Figure 4a).
"""

from __future__ import annotations

import numpy as np

from repro.core.layout import ChunkItem

MB = 1024 * 1024


def zipf_chunk_sizes(
    num_chunks: int,
    skew: float,
    min_size: int = 1 * MB,
    max_size: int = 100 * MB,
    seed: int = 0,
) -> list[int]:
    """Chunk sizes in ``[min_size, max_size]`` with Zipfian skew.

    ``skew=0`` is uniform; larger skews concentrate mass on small sizes
    (matching the paper's Zipfian 0 / 0.5 / 0.99 sweeps).
    """
    if num_chunks <= 0:
        raise ValueError("num_chunks must be positive")
    if not 0 <= skew:
        raise ValueError("skew must be non-negative")
    rng = np.random.default_rng(seed)
    if skew == 0:
        sizes = rng.uniform(min_size, max_size, size=num_chunks)
    else:
        # Zipf over a rank grid mapped onto the size range.
        ranks = np.arange(1, 1025)
        weights = 1.0 / np.power(ranks, skew)
        weights /= weights.sum()
        chosen = rng.choice(ranks, size=num_chunks, p=weights)
        sizes = min_size + (chosen - 1) / (len(ranks) - 1) * (max_size - min_size)
    return [int(s) for s in sizes]


def items_from_sizes(sizes: list[int]) -> list[ChunkItem]:
    """Wrap raw sizes as ChunkItems keyed ``(0, i)``."""
    return [ChunkItem(key=(0, i), size=s) for i, s in enumerate(sizes)]


def uniform_chunk_sizes(
    num_chunks: int,
    min_size: int = 1 * MB,
    max_size: int = 100 * MB,
    seed: int = 0,
) -> list[int]:
    """The Fig 10a oracle-runtime dataset: uniform 1-100 MB chunks."""
    return zipf_chunk_sizes(num_chunks, 0.0, min_size, max_size, seed)


# ---------------------------------------------------------------------------
# Paper-scale per-column chunk profiles (Figure 12 averages, in MB)
# ---------------------------------------------------------------------------

#: Average column chunk size per lineitem column, from the paper's Fig 12.
LINEITEM_CHUNK_MB = [48, 148, 60, 7, 23, 173, 15, 15, 7, 4, 45, 45, 45, 8, 11, 386]

#: Taxi columns are more uniform (Fig 4c); ~26 MB average over 20 columns
#: for the 8.4 GB file with 16 row groups.
TAXI_CHUNK_MB = [30, 12, 40, 40, 6, 35, 45, 45, 5, 2, 45, 45, 6, 10, 4, 1, 30, 8, 38, 35]


def paper_scale_chunk_ranges(
    chunk_mb: list[int],
    num_row_groups: int,
    jitter: float = 0.1,
    seed: int = 0,
) -> list[tuple[int, int]]:
    """Byte ranges ``(offset, size)`` of chunks laid out row-group-major.

    Sizes follow the per-column averages with ``jitter`` relative noise,
    reproducing the file layout the splits experiment (Fig 4a) scans.
    """
    rng = np.random.default_rng(seed)
    ranges: list[tuple[int, int]] = []
    offset = 0
    for _rg in range(num_row_groups):
        for mean_mb in chunk_mb:
            noise = 1.0 + rng.uniform(-jitter, jitter)
            size = max(1, int(mean_mb * MB * noise))
            ranges.append((offset, size))
            offset += size
    return ranges
