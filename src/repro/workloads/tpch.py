"""TPC-H ``lineitem`` generator (dbgen-like, scaled down).

Reproduces the 16-column lineitem schema with the value distributions that
give the paper's Parquet file its characteristic bimodal chunk sizes
(Figure 4c) and compression-ratio spread (Figure 6): tiny, highly
repetitive chunks (``l_linenumber``, ``l_returnflag``) next to huge,
barely-compressible ones (``l_comment``, ``l_extendedprice``).

Column ids match the paper's Figures 6/12/13 (column 0..15 in schema
order); e.g. *column 5* is ``l_extendedprice`` and *column 9* is
``l_linestatus``.
"""

from __future__ import annotations

import numpy as np

from repro.format.compression import DEFAULT_CODEC
from repro.format.schema import ColumnType
from repro.format.table import Table
from repro.format.writer import write_table
from repro.sql.dates import date_to_days
from repro.workloads.text import pick, random_sentences

#: Paper row counts: 10 row groups of 30M rows at the 10GB scale.  The
#: default scaled-down shape keeps 10 row groups.
DEFAULT_ROWS = 40_000
DEFAULT_ROW_GROUP_ROWS = 4_000

#: Schema order matches TPC-H; index in this list == paper column id.
COLUMN_NAMES = [
    "l_orderkey",  # 0
    "l_partkey",  # 1
    "l_suppkey",  # 2
    "l_linenumber",  # 3
    "l_quantity",  # 4
    "l_extendedprice",  # 5
    "l_discount",  # 6
    "l_tax",  # 7
    "l_returnflag",  # 8
    "l_linestatus",  # 9
    "l_shipdate",  # 10
    "l_commitdate",  # 11
    "l_receiptdate",  # 12
    "l_shipinstruct",  # 13
    "l_shipmode",  # 14
    "l_comment",  # 15
]

_SHIPINSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
_SHIPMODE = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]


def lineitem_table(num_rows: int = DEFAULT_ROWS, seed: int = 42) -> Table:
    """Generate a lineitem table with TPC-H-like value distributions."""
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    rng = np.random.default_rng(seed)

    # Orders have 1-7 lineitems; orderkey is sorted (as dbgen emits).
    orderkey = np.sort(rng.integers(1, max(2, num_rows // 4), size=num_rows))
    linenumber = np.zeros(num_rows, dtype=np.int64)
    run_start = 0
    for i in range(1, num_rows + 1):
        if i == num_rows or orderkey[i] != orderkey[run_start]:
            linenumber[run_start:i] = np.arange(1, i - run_start + 1)
            run_start = i

    quantity = rng.integers(1, 51, size=num_rows)
    partkey = rng.integers(1, 200_000, size=num_rows)
    suppkey = rng.integers(1, 10_000, size=num_rows)
    # extendedprice = quantity * part price; prices are diverse doubles.
    part_price = rng.uniform(900.0, 2100.0, size=num_rows).round(2)
    extendedprice = (quantity * part_price).round(2)
    discount = rng.integers(0, 11, size=num_rows) / 100.0
    tax = rng.integers(0, 9, size=num_rows) / 100.0

    # Ship dates are loosely time-correlated with file position (orders are
    # ingested in time order), so row-group min/max stats can prune most
    # row groups for date-range filters — the reason the paper's date
    # columns (10-12) see only modest pushdown gains.
    ship_base = date_to_days("1992-01-01")
    ship_span = date_to_days("1998-12-01") - ship_base
    drift = (np.arange(num_rows) / num_rows * ship_span).astype(np.int64)
    shipdate = ship_base + drift + rng.integers(-60, 61, size=num_rows)
    commitdate = shipdate + rng.integers(-30, 31, size=num_rows)
    receiptdate = shipdate + rng.integers(1, 31, size=num_rows)

    returnflag = pick(rng, num_rows, ["R", "A", "N"], p=[0.25, 0.25, 0.5])
    linestatus = pick(rng, num_rows, ["O", "F"])
    shipinstruct = pick(rng, num_rows, _SHIPINSTRUCT)
    shipmode = pick(rng, num_rows, _SHIPMODE)
    comment = random_sentences(rng, num_rows, min_words=5, max_words=14)

    return Table.from_dict(
        {
            "l_orderkey": (ColumnType.INT64, orderkey),
            "l_partkey": (ColumnType.INT64, partkey),
            "l_suppkey": (ColumnType.INT64, suppkey),
            "l_linenumber": (ColumnType.INT64, linenumber),
            "l_quantity": (ColumnType.INT64, quantity),
            "l_extendedprice": (ColumnType.DOUBLE, extendedprice),
            "l_discount": (ColumnType.DOUBLE, discount),
            "l_tax": (ColumnType.DOUBLE, tax),
            "l_returnflag": (ColumnType.STRING, returnflag),
            "l_linestatus": (ColumnType.STRING, linestatus),
            "l_shipdate": (ColumnType.DATE, shipdate),
            "l_commitdate": (ColumnType.DATE, commitdate),
            "l_receiptdate": (ColumnType.DATE, receiptdate),
            "l_shipinstruct": (ColumnType.STRING, shipinstruct),
            "l_shipmode": (ColumnType.STRING, shipmode),
            "l_comment": (ColumnType.STRING, comment),
        }
    )


def lineitem_file(
    num_rows: int = DEFAULT_ROWS,
    row_group_rows: int = DEFAULT_ROW_GROUP_ROWS,
    codec: str = DEFAULT_CODEC,
    page_values: int = 500,
    seed: int = 42,
) -> tuple[bytes, Table]:
    """Generate the lineitem table and serialise it to PAX bytes."""
    table = lineitem_table(num_rows, seed)
    return (
        write_table(
            table, row_group_rows=row_group_rows, codec=codec, page_values=page_values
        ),
        table,
    )


def column_name(column_id: int) -> str:
    """Map a paper column id (0..15) to the lineitem column name."""
    return COLUMN_NAMES[column_id]
