"""Dataset generators and query workloads from the paper's evaluation.

Four datasets (Table 3): TPC-H lineitem, NYC taxi, recipeNLG, UK property
prices — scaled down but with matching schemas, cardinalities and value
distributions.  Plus synthetic chunk-size profiles for layout-only
experiments and the paper's microbenchmark/Q1-Q4 queries.
"""

from repro.workloads.queries import (
    WorkloadQuery,
    microbenchmark_query,
    real_world_queries,
)
from repro.workloads.recipe import recipe_file, recipe_table
from repro.workloads.synthetic import (
    LINEITEM_CHUNK_MB,
    MB,
    TAXI_CHUNK_MB,
    items_from_sizes,
    paper_scale_chunk_ranges,
    uniform_chunk_sizes,
    zipf_chunk_sizes,
)
from repro.workloads.taxi import taxi_file, taxi_table
from repro.workloads.tpch import column_name, lineitem_file, lineitem_table
from repro.workloads.ukpp import ukpp_file, ukpp_table

__all__ = [
    "LINEITEM_CHUNK_MB",
    "MB",
    "TAXI_CHUNK_MB",
    "WorkloadQuery",
    "column_name",
    "items_from_sizes",
    "lineitem_file",
    "lineitem_table",
    "microbenchmark_query",
    "paper_scale_chunk_ranges",
    "real_world_queries",
    "recipe_file",
    "recipe_table",
    "taxi_file",
    "taxi_table",
    "ukpp_file",
    "ukpp_table",
    "uniform_chunk_sizes",
    "zipf_chunk_sizes",
]
