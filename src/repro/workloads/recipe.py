"""recipeNLG-like dataset generator.

A text-heavy 7-column table (recipes with long directions/ingredients
strings).  Its Parquet profile — a handful of very large, hard-to-compress
text chunks — is the case where the Padding strategy's overhead explodes
(83.8% in the paper's Figure 16b).
"""

from __future__ import annotations

import numpy as np

from repro.format.compression import DEFAULT_CODEC
from repro.format.schema import ColumnType
from repro.format.table import Table
from repro.format.writer import write_table
from repro.workloads.text import pick, random_sentences

DEFAULT_ROWS = 6_000
DEFAULT_ROW_GROUP_ROWS = 500  # paper: 12 row groups x 7 columns = 84 chunks

_SOURCES = ["Gathered", "Recipes1M", "CookPad", "AllRecipes"]


def recipe_table(num_rows: int = DEFAULT_ROWS, seed: int = 11) -> Table:
    """Generate the 7-column recipes table."""
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "id": (ColumnType.INT64, np.arange(num_rows)),
            "title": (ColumnType.STRING, random_sentences(rng, num_rows, 2, 6)),
            "ingredients": (ColumnType.STRING, random_sentences(rng, num_rows, 20, 60)),
            "directions": (ColumnType.STRING, random_sentences(rng, num_rows, 60, 160)),
            "link": (
                ColumnType.STRING,
                _links(rng, num_rows),
            ),
            "source": (ColumnType.STRING, pick(rng, num_rows, _SOURCES)),
            "ner": (ColumnType.STRING, random_sentences(rng, num_rows, 5, 15)),
        }
    )


def _links(rng: np.random.Generator, count: int) -> np.ndarray:
    ids = rng.integers(0, 10**9, size=count)
    out = np.empty(count, dtype=object)
    for i, v in enumerate(ids):
        out[i] = f"www.recipes.example/{v:09x}"
    return out


def recipe_file(
    num_rows: int = DEFAULT_ROWS,
    row_group_rows: int = DEFAULT_ROW_GROUP_ROWS,
    codec: str = DEFAULT_CODEC,
    page_values: int = 500,
    seed: int = 11,
) -> tuple[bytes, Table]:
    """Generate the recipes table and serialise it to PAX bytes."""
    table = recipe_table(num_rows, seed)
    return (
        write_table(
            table, row_group_rows=row_group_rows, codec=codec, page_values=page_values
        ),
        table,
    )
