"""The paper's query workloads.

* **Microbenchmark** (Section 6): ``SELECT column FROM lineitem WHERE
  column < value``, with ``value`` chosen as the empirical quantile that
  hits a target selectivity (default 1%, as in production traces).
* **Real-world queries** (Table 4): Q1/Q2 from TPC-H (pricing summary,
  revenue change) and Q3/Q4 from the Timescale taxi tutorial.  Filter
  thresholds are tuned so the selectivities match Table 4 (1.4%, 5.4%,
  37.5%, 6.3%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.format.schema import ColumnType
from repro.format.table import Table
from repro.sql.dates import days_to_date


@dataclass(frozen=True)
class WorkloadQuery:
    """A named query with the paper's Table 4 descriptors."""

    name: str
    description: str
    dataset: str
    sql: str
    num_filters: int
    num_projections: int
    target_selectivity: float


def _quantile_literal(table: Table, column: str, selectivity: float) -> str:
    """SQL literal ``v`` such that ``column < v`` matches ~``selectivity``.

    For discrete columns the literal is the smallest domain value whose
    strict-less-than predicate reaches the target, so low-cardinality
    columns (e.g. ``l_returnflag`` with three values) get the closest
    achievable selectivity instead of a degenerate zero-row query.
    """
    col = table.column(column)
    values = col.values
    if col.type is ColumnType.STRING:
        import bisect

        ordered = sorted(values)
        target = ordered[min(len(ordered) - 1, max(0, int(selectivity * len(ordered))))]
        # Next distinct value above the quantile: '< v' then covers it.
        above = bisect.bisect_right(ordered, target)
        if above < len(ordered):
            return f"'{ordered[above]}'"
        return f"'{target}~'"  # past the max: selects everything <= target
    q = float(np.quantile(values.astype(np.float64), selectivity))
    if col.type is ColumnType.DATE:
        days = max(int(np.ceil(q)), int(values.min()) + 1)
        return f"'{days_to_date(days)}'"
    if col.type is ColumnType.INT64:
        return str(max(int(np.floor(q)) + 1, int(values.min()) + 1))
    # DOUBLE: on discrete-valued columns (e.g. l_discount) the quantile can
    # land on the minimum; step up to the next distinct value so the query
    # matches at least the smallest achievable selectivity.
    if q <= float(values.min()):
        uniques = np.unique(values)
        q = float(uniques[1]) if len(uniques) > 1 else float(uniques[0]) + 1.0
    return repr(round(q, 6))


def microbenchmark_query(
    table: Table,
    column: str,
    selectivity: float = 0.01,
    object_name: str = "lineitem",
) -> str:
    """The paper's microbenchmark: filter + project one column."""
    if not 0.0 < selectivity <= 1.0:
        raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
    if selectivity >= 1.0:
        # Full scan: a predicate every row satisfies.
        return f"SELECT {column} FROM {object_name} WHERE {column} >= {_min_literal(table, column)}"
    literal = _quantile_literal(table, column, selectivity)
    return f"SELECT {column} FROM {object_name} WHERE {column} < {literal}"


def _min_literal(table: Table, column: str) -> str:
    col = table.column(column)
    if col.type is ColumnType.STRING:
        return f"'{min(col.values)}'"
    lo = col.values.min()
    if col.type is ColumnType.DATE:
        return f"'{days_to_date(int(lo))}'"
    if col.type is ColumnType.INT64:
        return str(int(lo))
    return repr(float(lo))


def real_world_queries(lineitem: Table, taxi: Table) -> list[WorkloadQuery]:
    """Q1-Q4 with thresholds tuned to the Table 4 selectivities."""
    # Q1 (projection heavy): pricing-summary style; 1 filter, 6 projections.
    q1_date = _quantile_literal(lineitem, "l_shipdate", 0.014)
    q1 = WorkloadQuery(
        name="Q1",
        description="projection heavy (TPC-H pricing summary report)",
        dataset="tpch",
        sql=(
            "SELECT l_returnflag, l_linestatus, l_quantity, l_extendedprice, "
            f"l_discount, l_tax FROM lineitem WHERE l_shipdate < {q1_date}"
        ),
        num_filters=1,
        num_projections=6,
        target_selectivity=0.014,
    )

    # Q2 (filter heavy): revenue-change style; 3 filters, 2 projections.
    # shipdate-year x discount-band x quantity cut multiply to ~5.4%.
    q2_date = _quantile_literal(lineitem, "l_shipdate", 0.35)
    q2 = WorkloadQuery(
        name="Q2",
        description="filter heavy (TPC-H forecasting revenue change)",
        dataset="tpch",
        sql=(
            "SELECT l_extendedprice, l_discount FROM lineitem "
            f"WHERE l_shipdate < {q2_date} AND l_discount BETWEEN 0.05 AND 0.07 "
            "AND l_quantity < 24"
        ),
        num_filters=3,
        num_projections=2,
        target_selectivity=0.054,
    )

    # Q3 (high selectivity): trips per day in 2015 -> 12 of 32 months.
    q3 = WorkloadQuery(
        name="Q3",
        description="high selectivity (taxi rides in 2015)",
        dataset="taxi",
        sql="SELECT count(date) FROM taxi WHERE date < '2015-12-31'",
        num_filters=1,
        num_projections=1,
        target_selectivity=0.375,
    )

    # Q4 (low selectivity): fares in early 2015 -> 2 of 32 months.  The
    # fare column's high compressibility trips the Cost Equation.
    q4 = WorkloadQuery(
        name="Q4",
        description="low selectivity (average fare, early 2015)",
        dataset="taxi",
        sql="SELECT date, fare FROM taxi WHERE date < '2015-03-01'",
        num_filters=1,
        num_projections=2,
        target_selectivity=0.063,
    )
    return [q1, q2, q3, q4]


def q4_grouped_sql() -> str:
    """The paper's Q4 exactly as written: average fare per day.

    ``SELECT date, AVG(fare) ... `` implies grouping by day; Table 4's
    descriptor form (two projections) is what :func:`real_world_queries`
    returns, while this is the literal query for engines with GROUP BY.
    """
    return (
        "SELECT date, avg(fare) FROM taxi "
        "WHERE date < '2015-03-01' GROUP BY date"
    )
