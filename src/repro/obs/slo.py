"""Declarative SLOs with multi-window burn-rate alerting over scraped series.

The Google-SRE alerting recipe, scaled to simulated time: an objective's
*error-budget burn rate* is how fast the run is consuming its allowance
(burn 1.0 = exactly on budget, burn 10 = spending it 10× too fast).  An
alert fires only when **both** a short and a long trailing window burn
above the objective's threshold — the short window makes detection fast
(within a couple of scrape intervals of an incident), the long window
keeps one bad sample from paging.

Three objective kinds:

* ``availability`` — bad-request fraction (sheds + rejects + deadline
  misses + quota refusals over completed requests) against an error
  budget of ``1 - target``.
* ``latency_p99`` — fraction of windowed latency observations above a
  threshold (the deadline, typically) against a ``1 - target`` budget,
  derived from scraped histogram bucket deltas.
* ``gauge_above`` — freshness-style: fraction of window samples where a
  gauge (repair/rebalance backlog) sits above a threshold; burning when
  the backlog never drains.

Alerts are **observable state only**: typed :class:`Alert` records, a
``repro_alerts_total`` counter, a ``slo.alert`` tracer instant, and a
:meth:`SLOEngine.subscribe` hook admission/breaker layers can later
attach to.  Evaluation runs inside the scraper's on-sample callback —
pure reads of already-sampled series, zero simulated perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default burn-rate thresholds per objective kind.  Budget-fraction
#: kinds use the classic fast-burn page threshold; gauge objectives
#: burn when (nearly) every window sample is above threshold.
DEFAULT_BURN_THRESHOLD = {"availability": 10.0, "latency_p99": 10.0, "gauge_above": 1.0}

KINDS = tuple(DEFAULT_BURN_THRESHOLD)


@dataclass
class SLObjective:
    """One declarative objective evaluated over scraped series."""

    name: str
    kind: str  # "availability" | "latency_p99" | "gauge_above"
    target: float = 0.99  # availability / latency compliance target
    threshold: float = 0.0  # latency seconds / gauge level
    series: str = ""  # histogram (latency_p99) or gauge (gauge_above) name
    labels: dict = field(default_factory=dict)
    #: Trailing windows, in simulated seconds; 0 = the engine default
    #: (1 scrape interval short, 4 intervals long).
    short_window_s: float = 0.0
    long_window_s: float = 0.0
    #: Burn rate at/above which a window counts as burning; 0 = the
    #: kind's default (see DEFAULT_BURN_THRESHOLD).
    burn_threshold: float = 0.0
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; known: {KINDS}")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "threshold": self.threshold,
            "series": self.series,
            "labels": dict(self.labels),
            "short_window_s": self.short_window_s,
            "long_window_s": self.long_window_s,
            "burn_threshold": self.burn_threshold,
            "severity": self.severity,
        }


@dataclass
class Alert:
    """One burn-rate alert firing (typed, observable-only)."""

    time: float
    slo: str
    severity: str
    burn_short: float
    burn_long: float
    short_window_s: float
    long_window_s: float
    message: str
    resolved_time: float | None = None

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "slo": self.slo,
            "severity": self.severity,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
            "short_window_s": self.short_window_s,
            "long_window_s": self.long_window_s,
            "message": self.message,
            "resolved_time": self.resolved_time,
        }


def default_objectives(config) -> list[SLObjective]:
    """The stock objectives installed by ``slo_enabled``.

    The latency threshold tracks the store's deadline when one is set
    (the paper's operational question is "are queries meeting their
    deadline", not an absolute number).
    """
    deadline = getattr(config, "default_deadline_s", 0.0) or 0.0
    return [
        SLObjective(name="availability", kind="availability", target=0.99),
        SLObjective(
            name="latency_p99",
            kind="latency_p99",
            target=0.99,
            threshold=deadline if deadline > 0 else 1.0,
            series="repro_query_latency_seconds",
        ),
        SLObjective(
            name="repair_freshness",
            kind="gauge_above",
            threshold=0.0,
            series="repro_cluster_migrations_inflight",
            severity="ticket",
        ),
    ]


class SLOEngine:
    """Evaluates objectives at every scrape; emits alerts on rising edges.

    An objective is *firing* while both windows burn at/above threshold;
    the :class:`Alert` record is created on the transition into firing
    (``repro_alerts_total`` counter + ``slo.alert`` tracer instant) and
    stamped with ``resolved_time`` on the transition out.
    """

    def __init__(
        self,
        scraper,
        objectives: list[SLObjective],
        registry=None,
        tracer=None,
    ) -> None:
        self.scraper = scraper
        self.objectives = list(objectives)
        self.registry = registry
        self.tracer = tracer
        self.alerts: list[Alert] = []
        self._active: dict[str, Alert] = {}
        self._subscribers: list = []
        scraper.on_sample.append(self._evaluate)

    def subscribe(self, callback) -> None:
        """Register ``callback(alert)`` for every alert firing.

        The hook future admission/breaker layers can attach to; this PR
        ships it observable-only."""
        self._subscribers.append(callback)

    @property
    def firing(self) -> list[str]:
        """Names of objectives currently in the firing state."""
        return sorted(self._active)

    # -- evaluation --------------------------------------------------------

    def _windows(self, obj: SLObjective) -> tuple[float, float]:
        interval = self.scraper.interval_s
        short = obj.short_window_s if obj.short_window_s > 0 else interval
        long = obj.long_window_s if obj.long_window_s > 0 else 4 * interval
        return short, max(long, short)

    def burn_rate(self, obj: SLObjective, window_s: float, at: float) -> float:
        """The objective's error-budget burn over one trailing window."""
        scraper = self.scraper
        budget = max(1e-9, 1.0 - obj.target)
        if obj.kind == "availability":
            total = scraper.delta("repro_cluster_requests_total", None, window_s, at)
            if total <= 0:
                return 0.0
            bad = scraper.delta("repro_cluster_bad_requests_total", None, window_s, at)
            return (bad / total) / budget
        if obj.kind == "latency_p99":
            frac = scraper.window_fraction_above(
                obj.series or "repro_query_latency_seconds",
                obj.threshold,
                obj.labels or None,
                window_s,
                at,
            )
            return 0.0 if frac is None else frac / budget
        # gauge_above: fraction of window samples above the threshold.
        values = scraper.window_values(obj.series, obj.labels or None, window_s, at)
        if not values:
            return 0.0
        return sum(1 for v in values if v > obj.threshold) / len(values)

    def _evaluate(self, scraper, t: float) -> None:
        for obj in self.objectives:
            short_w, long_w = self._windows(obj)
            threshold = (
                obj.burn_threshold
                if obj.burn_threshold > 0
                else DEFAULT_BURN_THRESHOLD[obj.kind]
            )
            burn_short = self.burn_rate(obj, short_w, t)
            burn_long = self.burn_rate(obj, long_w, t)
            firing = burn_short >= threshold and burn_long >= threshold
            active = self._active.get(obj.name)
            if firing and active is None:
                alert = Alert(
                    time=t,
                    slo=obj.name,
                    severity=obj.severity,
                    burn_short=burn_short,
                    burn_long=burn_long,
                    short_window_s=short_w,
                    long_window_s=long_w,
                    message=(
                        f"SLO {obj.name}: burn {burn_short:.2f}/{burn_long:.2f} "
                        f"over {short_w:g}s/{long_w:g}s windows "
                        f">= {threshold:g}"
                    ),
                )
                self.alerts.append(alert)
                self._active[obj.name] = alert
                if self.registry is not None:
                    self.registry.counter(
                        "repro_alerts_total",
                        "SLO burn-rate alerts fired",
                        slo=obj.name,
                        severity=obj.severity,
                    ).inc()
                if self.tracer is not None:
                    self.tracer.instant(
                        "slo.alert",
                        cat="slo",
                        slo=obj.name,
                        severity=obj.severity,
                        burn_short=round(burn_short, 3),
                        burn_long=round(burn_long, 3),
                    )
                for callback in self._subscribers:
                    callback(alert)
            elif not firing and active is not None:
                active.resolved_time = t
                del self._active[obj.name]
                if self.tracer is not None:
                    self.tracer.instant("slo.resolve", cat="slo", slo=obj.name)

    # -- export ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "objectives": [obj.to_dict() for obj in self.objectives],
            "alerts": [alert.to_dict() for alert in self.alerts],
            "firing": self.firing,
        }

    def write_json(self, path: str) -> None:
        import json

        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, sort_keys=True, indent=2)
            fh.write("\n")


__all__ = [
    "Alert",
    "DEFAULT_BURN_THRESHOLD",
    "SLObjective",
    "SLOEngine",
    "default_objectives",
]
