"""Named metrics: counters, gauges, and log-bucketed histograms.

A :class:`MetricsRegistry` is a flat namespace of metric families, each
holding one instance per label set — the Prometheus data model, sized
for this repo: pure Python, no wall-clock, no background scraping.
``export()`` renders the Prometheus text exposition format and
``to_dict()`` a JSON-able structure (the bench harness's
``METRICS.json`` artifact).

Histograms are log-bucketed: upper bounds grow by a fixed factor (2x by
default) from a floor, so one bucket layout spans microseconds to
kilo-seconds (or bytes to terabytes) with ~40 buckets.  Quantiles are
nearest-rank over the cumulative bucket counts, reported at each
bucket's upper bound (the exact maximum is tracked and used for the
overflow bucket), which is the usual Prometheus-side estimate.

The registry feeds from :class:`~repro.cluster.metrics.ClusterMetrics`:
when a store's ``metrics_registry_enabled`` knob is on it installs a
registry as ``cluster.metrics.registry`` and every
``record_query``/``record_repair`` call updates the named metrics —
pure bookkeeping on the metadata plane, zero simulation events.
"""

from __future__ import annotations

import math
import re

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value) -> str:
    # Prometheus text exposition: label values escape backslash, the
    # double quote, and line feed (a raw newline would truncate the
    # sample line and corrupt every line after it).
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(value) -> str:
    # HELP text escapes backslash and line feed (quotes are legal there).
    return str(value).replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: dict) -> None:
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: dict) -> None:
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


def log_buckets(lo: float, hi: float, factor: float = 2.0) -> list[float]:
    """Geometric bucket upper bounds from ``lo`` up to at least ``hi``."""
    if lo <= 0 or factor <= 1:
        raise ValueError("need lo > 0 and factor > 1")
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * factor)
    return bounds


#: Default layouts: seconds (1 µs .. ~1000 s) and bytes (64 B .. ~4 TB).
SECONDS_BUCKETS = log_buckets(1e-6, 1.1e3)
BYTES_BUCKETS = log_buckets(64.0, 4.4e12, factor=4.0)


class Histogram:
    """Log-bucketed distribution with nearest-rank quantile estimates."""

    __slots__ = ("labels", "bounds", "counts", "count", "sum", "max_value", "exemplars")

    def __init__(self, labels: dict, bounds: list[float] | None = None) -> None:
        self.labels = labels
        self.bounds = list(bounds or SECONDS_BUCKETS)
        if any(b <= a for a, b in zip(self.bounds, self.bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)  # +1: the +Inf bucket
        self.count = 0
        self.sum = 0.0
        self.max_value = -math.inf
        #: bucket index -> (value, trace_id) of the largest exemplared
        #: observation that landed in the bucket (OpenMetrics exemplars).
        self.exemplars: dict[int, tuple[float, int]] = {}

    def observe(self, value: float, trace_id: int | None = None) -> None:
        self.count += 1
        self.sum += value
        if value > self.max_value:
            self.max_value = value
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        if trace_id is not None:
            held = self.exemplars.get(lo)
            if held is None or value >= held[0]:
                self.exemplars[lo] = (value, trace_id)

    def exemplar_for_quantile(self, q: float) -> tuple[float, int] | None:
        """The exemplar anchoring quantile ``q``: the (value, trace_id)
        captured in the bucket the nearest-rank estimate falls in, or —
        when that bucket never saw an exemplared observation — the
        nearest exemplared bucket at or above it.  ``None`` when the
        histogram holds no exemplars at all."""
        if not self.exemplars:
            return None
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        target = len(self.counts) - 1
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                target = i
                break
        for i in range(target, len(self.counts)):
            if i in self.exemplars:
                return self.exemplars[i]
        for i in range(target - 1, -1, -1):
            if i in self.exemplars:
                return self.exemplars[i]
        return None

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate (``q`` in [0, 1])."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else self.max_value
        return self.max_value

    def p50(self) -> float:
        return self.quantile(0.50)

    def p95(self) -> float:
        return self.quantile(0.95)

    def p99(self) -> float:
        return self.quantile(0.99)


class _Family:
    __slots__ = ("name", "kind", "help", "metrics", "bounds")

    def __init__(self, name, kind, help_, bounds=None):
        self.name = name
        self.kind = kind
        self.help = help_
        self.metrics: dict[tuple, object] = {}
        self.bounds = bounds


class MetricsRegistry:
    """A namespace of metric families with Prometheus/JSON export.

    ``const_labels`` are stamped onto every sample at export time (the
    bench harness labels each system-under-test, so a merged export
    keeps fusion and baseline series distinct).
    """

    def __init__(
        self, const_labels: dict | None = None, exemplars_enabled: bool = False
    ) -> None:
        self.const_labels = dict(const_labels or {})
        self._families: dict[str, _Family] = {}
        #: When on, ``record_query`` forwards each query's ``trace_id``
        #: into the latency histograms as a bucket exemplar.
        self.exemplars_enabled = exemplars_enabled

    # -- family accessors --------------------------------------------------

    def _family(self, name: str, kind: str, help_: str, bounds=None) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_, bounds)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        return family

    def _instance(self, family: _Family, labels: dict, factory):
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        key = _label_key(labels)
        inst = family.metrics.get(key)
        if inst is None:
            inst = factory()
            family.metrics[key] = inst
        return inst

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        family = self._family(name, "counter", help)
        return self._instance(family, labels, lambda: Counter(labels))

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        family = self._family(name, "gauge", help)
        return self._instance(family, labels, lambda: Gauge(labels))

    def histogram(
        self, name: str, help: str = "", buckets: list[float] | None = None, **labels
    ) -> Histogram:
        family = self._family(name, "histogram", help, buckets)
        return self._instance(family, labels, lambda: Histogram(labels, family.bounds))

    # -- the ClusterMetrics feed ------------------------------------------

    def record_query(self, qm) -> None:
        """Fold one finished query's :class:`QueryMetrics` into the registry."""
        self.counter("repro_queries_total", "Queries completed").inc()
        exemplar = qm.trace_id if self.exemplars_enabled else None
        self.histogram(
            "repro_query_latency_seconds", "End-to-end query latency"
        ).observe(qm.latency, trace_id=exemplar)
        self.histogram(
            "repro_query_network_bytes",
            "Simulated network bytes moved per query",
            buckets=BYTES_BUCKETS,
        ).observe(qm.network_bytes)
        for category, seconds in qm.seconds.items():
            self.counter(
                "repro_query_busy_seconds_total",
                "Accounted busy time by category",
                category=category,
            ).inc(seconds)
        self.counter(
            "repro_pushdown_chunks_total",
            "Per-chunk Cost Equation outcomes",
            decision="pushdown",
        ).inc(qm.pushed_down_chunks)
        self.counter(
            "repro_pushdown_chunks_total",
            "Per-chunk Cost Equation outcomes",
            decision="fallback",
        ).inc(qm.fallback_chunks)
        self.counter("repro_rpcs_total", "Wire messages", kind="issued").inc(qm.rpcs_issued)
        self.counter("repro_rpcs_total", "Wire messages", kind="saved").inc(qm.rpcs_saved)
        self.counter("repro_op_retries_total", "Remote ops re-attempted").inc(qm.retries)
        self.counter("repro_op_timeouts_total", "Remote op timeouts").inc(qm.timeouts)
        self.counter("repro_hedged_reads_total", "Speculative hedge reads issued").inc(
            qm.hedges
        )
        self.counter(
            "repro_degraded_reads_total", "Reads answered by EC reconstruction"
        ).inc(qm.degraded_reads)
        self.counter(
            "repro_checksum_failures_total", "End-to-end checksum mismatches"
        ).inc(qm.checksum_failures)
        self.counter(
            "repro_requests_shed_total", "Queued requests evicted by admission control"
        ).inc(qm.requests_shed)
        self.counter(
            "repro_requests_rejected_total", "Requests refused at a full admission queue"
        ).inc(qm.requests_rejected)
        self.counter(
            "repro_deadline_exceeded_total", "Operations abandoned past their deadline"
        ).inc(qm.deadline_exceeded)
        self.counter(
            "repro_breaker_open_total", "Circuit-breaker trips to open"
        ).inc(qm.breaker_open_total)
        self.counter(
            "repro_partial_results_total", "Scan queries answered partially under shed"
        ).inc(qm.partial_results)
        self.counter(
            "repro_cancellations_total", "In-flight child ops cancelled (not orphaned)"
        ).inc(qm.cancellations)
        self.counter(
            "repro_refusal_attempts_total",
            "Individual refused op attempts (retries of one request count each)",
        ).inc(qm.refusal_attempts)
        self.counter(
            "repro_quota_exceeded_total", "Requests refused over tenant quota"
        ).inc(qm.quota_exceeded)
        self.counter(
            "repro_quota_demotions_total",
            "Requests demoted to background priority over tenant quota",
        ).inc(qm.quota_demotions)
        if qm.tenant is not None:
            tenant = qm.tenant
            self.counter(
                "repro_tenant_queries_total", "Queries completed per tenant",
                tenant=tenant,
            ).inc()
            self.histogram(
                "repro_tenant_query_latency_seconds",
                "End-to-end query latency per tenant",
                tenant=tenant,
            ).observe(qm.latency, trace_id=exemplar)
            self.counter(
                "repro_tenant_requests_shed_total",
                "Queued requests evicted by admission control, per tenant",
                tenant=tenant,
            ).inc(qm.requests_shed)
            self.counter(
                "repro_tenant_requests_rejected_total",
                "Requests refused at a full admission queue, per tenant",
                tenant=tenant,
            ).inc(qm.requests_rejected)
            self.counter(
                "repro_tenant_deadline_exceeded_total",
                "Operations abandoned past their deadline, per tenant",
                tenant=tenant,
            ).inc(qm.deadline_exceeded)
            self.counter(
                "repro_tenant_quota_exceeded_total",
                "Requests refused over quota, per tenant",
                tenant=tenant,
            ).inc(qm.quota_exceeded)
            self.counter(
                "repro_tenant_quota_demotions_total",
                "Requests demoted over quota, per tenant",
                tenant=tenant,
            ).inc(qm.quota_demotions)

    def record_repair(self, nbytes: int, blocks: int, seconds: float) -> None:
        """Fold one repair run's totals into the registry."""
        self.counter("repro_repair_runs_total", "Repair runs completed").inc()
        self.counter("repro_repair_bytes_total", "Simulated repair traffic").inc(nbytes)
        self.counter("repro_repair_blocks_total", "Blocks rebuilt by repair").inc(blocks)
        self.counter("repro_repair_seconds_total", "Simulated time spent repairing").inc(
            seconds
        )

    def record_rebalance(self, nbytes: int, blocks: int, seconds: float) -> None:
        """Fold one rebalance run's totals into the registry."""
        self.counter("repro_rebalance_runs_total", "Rebalance runs completed").inc()
        self.counter(
            "repro_rebalance_bytes_total", "Simulated rebalance traffic"
        ).inc(nbytes)
        self.counter(
            "repro_rebalance_blocks_total", "Blocks migrated by rebalance"
        ).inc(blocks)
        self.counter(
            "repro_rebalance_seconds_total", "Simulated time spent rebalancing"
        ).inc(seconds)

    # -- export ------------------------------------------------------------

    def export(self) -> str:
        """Prometheus text exposition format (one family per HELP/TYPE)."""
        return _export_families([self])

    def to_dict(self) -> dict:
        """JSON-able dump (the METRICS.json artifact)."""
        out: dict[str, dict] = {}
        for name in sorted(self._families):
            family = self._families[name]
            samples = []
            for key in sorted(family.metrics):
                inst = family.metrics[key]
                labels = dict(key)
                if isinstance(inst, Histogram):
                    sample = {
                        "labels": labels,
                        "count": inst.count,
                        "sum": inst.sum,
                        "p50": inst.p50(),
                        "p95": inst.p95(),
                        "p99": inst.p99(),
                        "max": inst.max_value if inst.count else 0.0,
                        "buckets": {
                            _fmt_value(b): c
                            for b, c in zip(
                                list(inst.bounds) + [math.inf],
                                _cumulative(inst.counts),
                            )
                        },
                    }
                    if inst.exemplars:
                        bounds = list(inst.bounds) + [math.inf]
                        sample["exemplars"] = {
                            _fmt_value(bounds[i]): {
                                "value": value,
                                "trace_id": trace_id,
                            }
                            for i, (value, trace_id) in sorted(
                                inst.exemplars.items()
                            )
                        }
                    samples.append(sample)
                else:
                    samples.append({"labels": labels, "value": inst.value})
            out[name] = {"type": family.kind, "help": family.help, "samples": samples}
        return out


def _cumulative(counts: list[int]) -> list[int]:
    total = 0
    out = []
    for c in counts:
        total += c
        out.append(total)
    return out


def export_merged(registries: list[MetricsRegistry]) -> str:
    """One Prometheus text document over several registries.

    Families with the same name share one ``HELP``/``TYPE`` header;
    every sample carries its registry's ``const_labels``, so series from
    different systems under test stay distinct.
    """
    return _export_families(registries)


def _export_families(registries: list[MetricsRegistry]) -> str:
    merged: dict[str, list[tuple[_Family, dict]]] = {}
    for registry in registries:
        for name, family in registry._families.items():
            merged.setdefault(name, []).append((family, registry.const_labels))
    lines: list[str] = []
    for name in sorted(merged):
        entries = merged[name]
        kinds = {family.kind for family, _cl in entries}
        if len(kinds) != 1:
            raise ValueError(f"metric {name!r} registered with conflicting types {kinds}")
        help_ = next((f.help for f, _cl in entries if f.help), "")
        lines.append(f"# HELP {name} {_escape_help(help_)}")
        lines.append(f"# TYPE {name} {entries[0][0].kind}")
        for family, const_labels in entries:
            for key in sorted(family.metrics):
                inst = family.metrics[key]
                labels = {**const_labels, **dict(key)}
                if isinstance(inst, Histogram):
                    cumulative = _cumulative(inst.counts)
                    for bound, count in zip(
                        list(inst.bounds) + [math.inf], cumulative
                    ):
                        bucket_labels = {**labels, "le": _fmt_value(bound)}
                        lines.append(
                            f"{name}_bucket{_fmt_labels(bucket_labels)} {count}"
                        )
                    lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(inst.sum)}")
                    lines.append(f"{name}_count{_fmt_labels(labels)} {inst.count}")
                else:
                    lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(inst.value)}")
    return "\n".join(lines) + "\n"
