"""Span-based tracing on the simulated clock.

A :class:`Tracer` hangs off :attr:`Simulator.tracer` (default ``None``,
i.e. tracing disabled: hot paths pay one attribute load and a ``None``
check).  Components open spans with the context manager::

    tr = self.sim.tracer
    with tr.span("filter_pushdown", node=3, obj=name) if tr else _noop():
        ...

or, in the instrumented code of this repo, the equivalent explicit
pattern (``begin``/``finish``) where a ``with`` block is awkward.

Correct parent/child attribution across interleaved simulation
processes comes from the kernel: each :class:`~repro.cluster.simcore.Process`
remembers the span that was current when it was spawned and
swaps it in around every step, so a span opened inside one process
never becomes the parent of work done by a concurrently-running one.

Export targets:

* :meth:`Tracer.chrome_trace` — Chrome ``trace_event`` JSON (``B``/``E``
  duration pairs, ``i`` instants, ``M`` metadata).  Simulated
  concurrency means sibling spans overlap freely; the exporter packs
  spans onto synthetic tracks (``tid``\\ s) such that every track's
  ``B``/``E`` stream is balanced and properly nested, which is what
  Perfetto and ``chrome://tracing`` require.
* :meth:`Tracer.text_summary` — a flamegraph-style aggregation by span
  path (count, total and self time), for terminals.
"""

from __future__ import annotations

import json

#: Event categories understood by the exporters.
_US = 1e6  # seconds -> microseconds (trace_event's ts unit)


class Span:
    """One timed operation; ``end`` is ``None`` while the span is open."""

    __slots__ = ("name", "cat", "start", "end", "args", "span_id", "parent_id")

    def __init__(self, name, cat, start, span_id, parent_id, args):
        self.name = name
        self.cat = cat
        self.start = start
        self.end = None
        self.args = args
        self.span_id = span_id
        self.parent_id = parent_id

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def set(self, **args) -> None:
        """Attach (or overwrite) argument key/values on an open span."""
        self.args.update(args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.start:.6f}..{self.end}, id={self.span_id})"


class _SpanHandle:
    """Context manager that closes its span and restores the parent."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def set(self, **args) -> None:
        self.span.set(**args)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, *exc) -> None:
        self._tracer.finish(self.span)


class Tracer:
    """Collects spans and instant events against a simulator's clock."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.spans: list[Span] = []
        #: (time, name, cat, parent_id, args) instant events.
        self.instants: list[tuple[float, str, str, int | None, dict]] = []
        self._current: Span | None = None
        self._next_id = 1

    # -- recording ---------------------------------------------------------

    @property
    def current(self) -> Span | None:
        """The innermost open span of the currently-running process."""
        return self._current

    def span(self, name: str, cat: str = "sim", **args) -> _SpanHandle:
        """Open a span as a context manager (closed on ``__exit__``)."""
        return _SpanHandle(self, self.begin(name, cat=cat, **args))

    def begin(self, name: str, cat: str = "sim", **args) -> Span:
        """Open a span explicitly; pair with :meth:`finish`."""
        parent = self._current
        span = Span(
            name,
            cat,
            self.sim.now,
            self._next_id,
            parent.span_id if parent is not None else None,
            args,
        )
        self._next_id += 1
        self.spans.append(span)
        self._current = span
        return span

    def finish(self, span: Span, **args) -> None:
        """Close ``span`` at the current simulated time."""
        if args:
            span.args.update(args)
        if span.end is None:
            span.end = self.sim.now
        if self._current is span:
            self._current = self._parent_of(span)

    def instant(self, name: str, cat: str = "sim", **args) -> None:
        """Record a point event (WAL commit, retry, crash point, ...)."""
        parent = self._current
        self.instants.append(
            (self.sim.now, name, cat, parent.span_id if parent is not None else None, args)
        )

    def _parent_of(self, span: Span) -> Span | None:
        if span.parent_id is None:
            return None
        # Spans are appended in id order; ids are 1-based list offsets.
        return self.spans[span.parent_id - 1]

    # -- queries -----------------------------------------------------------

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in open order."""
        return [s for s in self.spans if s.name == name]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def ancestors(self, span: Span) -> list[Span]:
        """Parent chain, innermost first."""
        chain = []
        cur = self._parent_of(span)
        while cur is not None:
            chain.append(cur)
            cur = self._parent_of(cur)
        return chain

    def path(self, span: Span) -> str:
        """Root-to-span names joined with '/'."""
        names = [a.name for a in reversed(self.ancestors(span))] + [span.name]
        return "/".join(names)

    # -- Chrome trace_event export ----------------------------------------

    def chrome_trace(self, pid: int = 1, process_name: str | None = None) -> dict:
        """The trace as a Chrome ``trace_event`` object (``traceEvents``).

        Still-open spans are *rendered* as closed at the current simulated
        time and marked ``"truncated": true`` — the Span objects themselves
        are not mutated, so exporting mid-run is side-effect free and a
        later ``finish()`` still records the real end.  Spans are packed
        onto synthetic ``tid`` tracks so each track's ``B``/``E`` stream is
        balanced and properly nested: a span goes on its parent's track
        when the parent's interval still contains it, otherwise onto the
        first track whose innermost open interval does (or a fresh track).
        """
        horizon = self.sim.now
        # Effective ends: never mutate the recorded spans at export time.
        end_of = {
            s.span_id: (s.end if s.end is not None else max(horizon, s.start))
            for s in self.spans
        }
        ordered = sorted(
            self.spans, key=lambda s: (s.start, -end_of[s.span_id], s.span_id)
        )

        tracks: list[list[Span]] = []  # per-track stack of open spans
        forest: dict[int, list[Span]] = {}  # track -> roots
        children: dict[int, list[Span]] = {}  # span_id -> nested spans
        placed: dict[int, int] = {}  # span_id -> track index

        def fits(track: list[Span], s: Span) -> bool:
            # A zero-duration span sitting exactly at the innermost open
            # span's end stays nested inside it (popping on `<=` used to
            # evict the parent and strand the instant-like span on the
            # track's root level).
            s_end = end_of[s.span_id]
            while track and (
                end_of[track[-1].span_id] < s.start
                or (end_of[track[-1].span_id] == s.start and s_end > s.start)
            ):
                track.pop()
            return not track or (
                track[-1].start <= s.start and s_end <= end_of[track[-1].span_id]
            )

        for s in ordered:
            tid = None
            parent_tid = placed.get(s.parent_id) if s.parent_id is not None else None
            if parent_tid is not None and fits(tracks[parent_tid], s):
                tid = parent_tid
            else:
                for i, track in enumerate(tracks):
                    if fits(track, s):
                        tid = i
                        break
                if tid is None:
                    tid = len(tracks)
                    tracks.append([])
                    forest[tid] = []
            stack = tracks[tid]
            if stack:
                children.setdefault(stack[-1].span_id, []).append(s)
            else:
                forest.setdefault(tid, []).append(s)
            stack.append(s)
            placed[s.span_id] = tid

        events: list[dict] = []
        if process_name is not None:
            events.append(
                {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
                 "args": {"name": process_name}}
            )
        for tid in sorted(forest):
            events.append(
                {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                 "args": {"name": f"track-{tid}"}}
            )

        def emit(s: Span, tid: int) -> None:
            args = {"span_id": s.span_id}
            if s.parent_id is not None:
                args["parent_id"] = s.parent_id
            if s.end is None:
                args["truncated"] = True
            args.update(_jsonable(s.args))
            events.append(
                {"name": s.name, "cat": s.cat, "ph": "B", "ts": s.start * _US,
                 "pid": pid, "tid": tid, "args": args}
            )
            for child in children.get(s.span_id, []):
                emit(child, tid)
            events.append(
                {"name": s.name, "cat": s.cat, "ph": "E",
                 "ts": end_of[s.span_id] * _US, "pid": pid, "tid": tid}
            )

        for tid in sorted(forest):
            for root in forest[tid]:
                emit(root, tid)

        for when, name, cat, parent_id, args in self.instants:
            tid = placed.get(parent_id, 0) if parent_id is not None else 0
            events.append(
                {"name": name, "cat": cat, "ph": "i", "ts": when * _US,
                 "pid": pid, "tid": tid, "s": "t", "args": _jsonable(args)}
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str, **kwargs) -> None:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(**kwargs), fh)

    # -- flamegraph-style text summary ------------------------------------

    def text_summary(self, min_seconds: float = 0.0) -> str:
        """Aggregate spans by path: count, total and self time per path."""
        horizon = self.sim.now
        totals: dict[str, list[float]] = {}  # path -> [count, total, child_total]
        paths: dict[int, str] = {}
        for s in sorted(self.spans, key=lambda sp: sp.span_id):
            parent_path = paths.get(s.parent_id, "") if s.parent_id is not None else ""
            path = f"{parent_path};{s.name}" if parent_path else s.name
            paths[s.span_id] = path
            end = s.end if s.end is not None else max(horizon, s.start)
            dur = max(0.0, end - s.start)
            agg = totals.setdefault(path, [0, 0.0, 0.0])
            agg[0] += 1
            agg[1] += dur
            if parent_path:
                totals[parent_path][2] += dur
        lines = [f"{'count':>8s}  {'total_s':>12s}  {'self_s':>12s}  path"]
        for path in sorted(totals, key=lambda p: (-totals[p][1], p)):
            count, total, child_total = totals[path]
            if total < min_seconds:
                continue
            self_time = max(0.0, total - child_total)
            lines.append(f"{count:8d}  {total:12.6f}  {self_time:12.6f}  {path}")
        return "\n".join(lines)


def traced(sim, gen, name: str, cat: str = "sim", metrics=None, **args):
    """Drive generator ``gen`` to completion inside a span.

    The zero-cost-when-disabled wrapper for simulation processes: with no
    tracer installed this is a bare ``yield from``.  Used by the stores to
    wrap whole Put/Get/Query processes without restructuring them.

    ``metrics`` (a :class:`~repro.cluster.metrics.QueryMetrics`) gets the
    span's id stamped as ``trace_id``, linking the recorded metrics — and
    any histogram exemplars derived from them — back to the trace.
    """
    tracer = sim.tracer
    if tracer is None:
        value = yield from gen
        return value
    span = tracer.begin(name, cat=cat, **args)
    if metrics is not None:
        metrics.trace_id = span.span_id
    try:
        value = yield from gen
        return value
    finally:
        tracer.finish(span)


def _jsonable(args: dict) -> dict:
    """Span args coerced to JSON-safe values (tuples become strings)."""
    out = {}
    for key, value in args.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = str(value)
    return out
