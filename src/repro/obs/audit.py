"""Pushdown decision audit: one record per Cost-Equation evaluation.

The paper's adaptive pushdown decides *per projection chunk* whether to
ship ``selectivity × uncompressed`` bytes of selected values (pushdown)
or the whole compressed chunk (fallback), by the Cost Equation
``selectivity × compressibility < 1``.  The audit log captures every
evaluation at decision time — the estimate inputs, the threshold, the
decision — and is later filled in with the *actual* wire bytes of the
chosen path and of the alternative, so experiments can report ex-post
decision accuracy (what fraction of decisions moved fewer bytes than
the road not taken).

Records are metadata-plane: appending one never touches the simulation
event heap, so runs are event-identical with auditing on or off
(``StoreConfig.pushdown_audit_enabled``, default on).  When a tracer is
installed each record also emits a ``pushdown.decision`` instant event
into the trace.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PushdownAuditRecord:
    """One Cost-Equation evaluation and its outcome."""

    time: float
    object_name: str
    chunk_key: tuple  # (row_group, column) identity of the projected chunk
    stage: str  # "fused" | "projection"
    mode: str  # PushdownMode at decision time
    selectivity: float
    compressibility: float
    cost_product: float
    threshold: float
    push_down: bool
    #: Estimated wire bytes of each branch at decision time (real bytes).
    est_pushdown_bytes: int
    est_fetch_bytes: int
    #: Actual wire bytes of the branch taken / the branch not taken,
    #: filled in when the op executes (None until then; the alternative
    #: stays None when the op degraded to reconstruction instead).
    actual_chosen_bytes: int | None = None
    actual_alternative_bytes: int | None = None

    @property
    def decision(self) -> str:
        return "pushdown" if self.push_down else "fallback"

    @property
    def ex_post_optimal(self) -> bool | None:
        """Did the chosen branch move no more bytes than the alternative?

        ``None`` when the actual byte counts were never observed (the op
        fell back to degraded reconstruction, or never executed).
        """
        if self.actual_chosen_bytes is None or self.actual_alternative_bytes is None:
            return None
        return self.actual_chosen_bytes <= self.actual_alternative_bytes

    @property
    def bytes_saved(self) -> int | None:
        """Wire bytes the decision saved vs the alternative (negative: lost)."""
        if self.actual_chosen_bytes is None or self.actual_alternative_bytes is None:
            return None
        return self.actual_alternative_bytes - self.actual_chosen_bytes

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "object": self.object_name,
            "chunk": list(self.chunk_key),
            "stage": self.stage,
            "mode": self.mode,
            "selectivity": self.selectivity,
            "compressibility": self.compressibility,
            "cost_product": self.cost_product,
            "threshold": self.threshold,
            "decision": self.decision,
            "est_pushdown_bytes": self.est_pushdown_bytes,
            "est_fetch_bytes": self.est_fetch_bytes,
            "actual_chosen_bytes": self.actual_chosen_bytes,
            "actual_alternative_bytes": self.actual_alternative_bytes,
            "ex_post_optimal": self.ex_post_optimal,
            "bytes_saved": self.bytes_saved,
        }


@dataclass
class AuditSummary:
    """Aggregate decision-accuracy statistics over a set of records."""

    total: int = 0
    pushed: int = 0
    fallback: int = 0
    judged: int = 0  # records with both actual byte counts observed
    ex_post_optimal: int = 0
    bytes_saved: int = 0  # net wire bytes saved vs always-alternative

    @property
    def accuracy(self) -> float:
        """Fraction of judged decisions that were ex-post optimal."""
        return self.ex_post_optimal / self.judged if self.judged else 0.0

    @property
    def pushdown_fraction(self) -> float:
        """Fraction of all decisions that chose pushdown (0.0 when the
        run evaluated no decisions at all)."""
        return self.pushed / self.total if self.total else 0.0

    @property
    def judged_fraction(self) -> float:
        """Fraction of decisions whose actual byte counts were observed
        (0.0 on a zero-decision run)."""
        return self.judged / self.total if self.total else 0.0

    @property
    def mean_bytes_saved(self) -> float:
        """Mean wire bytes saved per judged decision (0.0 when none)."""
        return self.bytes_saved / self.judged if self.judged else 0.0

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "pushed": self.pushed,
            "fallback": self.fallback,
            "judged": self.judged,
            "ex_post_optimal": self.ex_post_optimal,
            "accuracy": self.accuracy,
            "pushdown_fraction": self.pushdown_fraction,
            "judged_fraction": self.judged_fraction,
            "bytes_saved": self.bytes_saved,
            "mean_bytes_saved": self.mean_bytes_saved,
        }


class PushdownAuditLog:
    """Append-only log of Cost-Equation evaluations for one store."""

    def __init__(self, sim, enabled: bool = True) -> None:
        self.sim = sim
        self.enabled = enabled
        self.records: list[PushdownAuditRecord] = []

    def record(
        self,
        object_name: str,
        chunk_key: tuple,
        stage: str,
        mode: str,
        decision,
        threshold: float = 1.0,
    ) -> PushdownAuditRecord | None:
        """Append one evaluation (``decision`` is a PushdownDecision).

        Returns the record so the caller can fill in the actual byte
        counts once the op has executed, or ``None`` when disabled.
        """
        if not self.enabled:
            return None
        rec = PushdownAuditRecord(
            time=self.sim.now,
            object_name=object_name,
            chunk_key=tuple(chunk_key),
            stage=stage,
            mode=mode,
            selectivity=decision.selectivity,
            compressibility=decision.compressibility,
            cost_product=decision.cost_product,
            threshold=threshold,
            push_down=decision.push_down,
            est_pushdown_bytes=decision.pushdown_bytes,
            est_fetch_bytes=decision.fetch_bytes,
        )
        self.records.append(rec)
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            tracer.instant(
                "pushdown.decision",
                cat="audit",
                obj=object_name,
                chunk=str(chunk_key),
                stage=stage,
                decision=rec.decision,
                selectivity=round(decision.selectivity, 6),
                compressibility=round(decision.compressibility, 6),
                cost_product=round(decision.cost_product, 6),
            )
        return rec

    def for_object(self, name: str) -> list[PushdownAuditRecord]:
        return [r for r in self.records if r.object_name == name]

    def since(self, time: float) -> list[PushdownAuditRecord]:
        return [r for r in self.records if r.time >= time]

    def summary(self, records: list[PushdownAuditRecord] | None = None) -> AuditSummary:
        out = AuditSummary()
        for rec in self.records if records is None else records:
            out.total += 1
            if rec.push_down:
                out.pushed += 1
            else:
                out.fallback += 1
            saved = rec.bytes_saved
            if saved is not None:
                out.judged += 1
                out.bytes_saved += saved
                if rec.ex_post_optimal:
                    out.ex_post_optimal += 1
        return out

    def to_dicts(self) -> list[dict]:
        return [r.to_dict() for r in self.records]


__all__ = ["AuditSummary", "PushdownAuditLog", "PushdownAuditRecord"]
