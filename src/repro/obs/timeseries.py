"""Continuous telemetry: a metadata-plane scraper on the simulated clock.

PR 4's observability is end-of-run only — totals, one trace, one
Prometheus dump.  This module adds the *time axis*: a :class:`Scraper`
samples the metrics registry plus live cluster state (per-node queue
depths and in-flight counts, breaker states, health verdicts, disk slow
factors, repair/rebalance bytes, per-tenant DRR deficits and backlogs)
every ``scrape_interval_s`` of **simulated** time into in-memory time
series, with delta / rate / windowed-quantile derivation on top.

Zero simulated perturbation, by construction: the scraper rides the
kernel's clock-listener hook (:meth:`Simulator.add_clock_listener`),
which fires when the clock is *about to* advance — it is an observer
only and never calls ``_schedule``, so a run's scheduled-event stream is
bit-identical with scraping on or off (the same invariant every prior
observability layer upheld, now for sampled state).

Exports:

* :meth:`Scraper.to_dict` / :meth:`Scraper.to_json` — the
  ``TIMESERIES.json`` artifact (``to_json`` sorts keys, so two runs with
  the same seed produce byte-identical files).
* :meth:`Scraper.openmetrics` — OpenMetrics-style text with per-sample
  timestamps and histogram exemplars, terminated by ``# EOF``.

:func:`install_telemetry` wires all of this (plus the SLO engine and
registry exemplars) behind the ``scrape_interval_s`` / ``slo_enabled`` /
``exemplars_enabled`` store knobs, default-off like every other
observability attachment.
"""

from __future__ import annotations

import json
import math

from repro.obs.registry import Histogram, MetricsRegistry, _fmt_value
from repro.obs.tracer import Tracer

#: Circuit-breaker states as scraped gauge values.
BREAKER_STATE_VALUE = {"closed": 0, "half_open": 1, "open": 2}

#: The service resources scraped per node, in a fixed order.
_NODE_RESOURCES = ("cpu", "disk", "nic_in", "nic_out")


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Scraper:
    """Samples registry + cluster state into in-memory time series.

    Series are keyed by ``(metric name, sorted label items)``; histogram
    families keep full bucket snapshots per sample so windowed quantiles
    can be derived from bucket deltas between two scrape points.
    """

    def __init__(self, cluster, interval_s: float) -> None:
        if interval_s <= 0:
            raise ValueError("scrape interval must be > 0 simulated seconds")
        self.cluster = cluster
        self.sim = cluster.sim
        self.interval_s = float(interval_s)
        #: Scrape timestamps, in simulated seconds (k * interval, k >= 1).
        self.times: list[float] = []
        self._samples_taken = 0
        #: (name, label key) -> list of (t, value) points.
        self._points: dict[tuple[str, tuple], list[tuple[float, float]]] = {}
        self._labels: dict[tuple[str, tuple], dict] = {}
        #: (name, label key) -> list of (t, count, sum, cumulative counts).
        self._hist: dict[tuple[str, tuple], list[tuple]] = {}
        self._hist_bounds: dict[tuple[str, tuple], list[float]] = {}
        #: On-sample hooks: ``callback(scraper, t)`` after each sample
        #: lands (the SLO engine registers here).  Observers only.
        self.on_sample: list = []
        self._installed = False

    # -- wiring ------------------------------------------------------------

    def install(self) -> None:
        """Attach to the simulator's clock-listener hook (idempotent)."""
        if not self._installed:
            self.sim.add_clock_listener(self._on_clock)
            self._installed = True

    def _on_clock(self, to: float) -> None:
        # Fire once per scrape boundary crossed by this clock advance.
        # Boundaries are computed as k * interval from a sample counter
        # (not by accumulating floats), so long runs cannot drift.
        next_t = (self._samples_taken + 1) * self.interval_s
        while next_t <= to:
            self._sample(next_t)
            self._samples_taken += 1
            next_t = (self._samples_taken + 1) * self.interval_s

    # -- sampling ----------------------------------------------------------

    def _record(self, t: float, name: str, labels: dict, value: float) -> None:
        key = (name, _label_key(labels))
        points = self._points.get(key)
        if points is None:
            points = self._points[key] = []
            self._labels[key] = dict(labels)
        points.append((t, float(value)))

    def _record_hist(self, t: float, name: str, labels: dict, hist: Histogram) -> None:
        key = (name, _label_key(labels))
        snaps = self._hist.get(key)
        if snaps is None:
            snaps = self._hist[key] = []
            self._labels[key] = dict(labels)
            self._hist_bounds[key] = list(hist.bounds)
        cumulative, total = [], 0
        for c in hist.counts:
            total += c
            cumulative.append(total)
        snaps.append((t, hist.count, hist.sum, tuple(cumulative)))

    def _sample(self, t: float) -> None:
        cluster = self.cluster
        registry = cluster.metrics.registry
        if registry is not None:
            for name in sorted(registry._families):
                family = registry._families[name]
                for key in sorted(family.metrics):
                    inst = family.metrics[key]
                    if isinstance(inst, Histogram):
                        self._record_hist(t, name, dict(key), inst)
                    else:
                        self._record(t, name, dict(key), inst.value)

        # Live cluster state, beyond what the registry accumulates.
        health = cluster.health.snapshot()
        breakers = cluster.breakers
        for node in cluster.nodes:
            nid = node.node_id
            lbl = {"node": str(nid)}
            self._record(t, "repro_node_up", lbl, 0.0 if health[nid]["down"] else 1.0)
            self._record(t, "repro_node_suspect", lbl, 1.0 if health[nid]["suspect"] else 0.0)
            self._record(t, "repro_node_health_tier", lbl, cluster.health.tier_value(nid))
            self._record(t, "repro_node_disk_slow_factor", lbl, node.disk.slow_factor)
            if breakers is not None:
                self._record(
                    t, "repro_node_breaker_state", lbl,
                    BREAKER_STATE_VALUE.get(breakers.state[nid], 0),
                )
            for rname, resource in zip(
                _NODE_RESOURCES,
                (node.cpu, node.disk.device, node.endpoint.ingress, node.endpoint.egress),
            ):
                rl = {"node": str(nid), "resource": rname}
                self._record(t, "repro_node_queue_depth", rl, resource.queue_length)
                self._record(t, "repro_node_inflight", rl, resource.in_use)

        cm = cluster.metrics
        self._record(t, "repro_cluster_requests_total", {}, len(cm.queries))
        bad = (
            cm.requests_shed
            + cm.requests_rejected
            + cm.deadline_exceeded
            + cm.quota_exceeded
        )
        self._record(t, "repro_cluster_bad_requests_total", {}, bad)
        self._record(t, "repro_cluster_network_bytes", {}, cm.network_bytes)
        self._record(t, "repro_cluster_repair_bytes", {}, cm.repair_bytes)
        self._record(t, "repro_cluster_rebalance_bytes", {}, cm.rebalance_bytes)
        self._record(t, "repro_cluster_read_repair_bytes", {}, cm.read_repair_bytes)
        self._record(t, "repro_cluster_quorum_lost_total", {}, cm.quorum_lost_total)
        self._record(
            t, "repro_cluster_severed_links", {}, cluster.network.severed_link_count()
        )
        self._record(t, "repro_cluster_migrations_inflight", {}, len(cluster.migrations))

        # Per-tenant DRR state: queued entries and deficit counters,
        # aggregated over every node resource with a fair queue attached.
        if cluster.qos is not None:
            queued: dict[str, int] = {}
            deficit: dict[str, float] = {}
            for node in cluster.nodes:
                for resource in (
                    node.cpu, node.disk.device,
                    node.endpoint.ingress, node.endpoint.egress,
                ):
                    fair = resource.fair
                    if fair is None:
                        continue
                    for tier in fair._tiers.values():
                        for tenant, q in tier.queues.items():
                            if q:
                                queued[tenant] = queued.get(tenant, 0) + len(q)
                        for tenant, d in tier.deficit.items():
                            deficit[tenant] = deficit.get(tenant, 0.0) + d
            for tenant in sorted(set(queued) | set(deficit) | set(cluster.qos.stats)):
                lbl = {"tenant": tenant}
                self._record(t, "repro_tenant_queue_depth", lbl, queued.get(tenant, 0))
                self._record(t, "repro_tenant_deficit", lbl, deficit.get(tenant, 0.0))

        self.times.append(t)
        for callback in self.on_sample:
            callback(self, t)

    # -- derivation --------------------------------------------------------

    def _series(self, name: str, labels: dict | None):
        return self._points.get((name, _label_key(labels or {})))

    def latest(self, name: str, labels: dict | None = None) -> float | None:
        """Most recent sampled value of a series, or ``None``."""
        points = self._series(name, labels)
        return points[-1][1] if points else None

    def delta(
        self, name: str, labels: dict | None = None,
        window_s: float = math.inf, at: float | None = None,
    ) -> float:
        """Increase of a (cumulative) series over the trailing window."""
        points = self._series(name, labels)
        if not points:
            return 0.0
        at = points[-1][0] if at is None else at
        end_v = start_v = None
        lo = at - window_s
        for t, v in points:
            if t > at:
                break
            end_v = v
            if t <= lo:
                start_v = v
        if end_v is None:
            return 0.0
        return end_v - (start_v if start_v is not None else 0.0)

    def rate(
        self, name: str, labels: dict | None = None,
        window_s: float | None = None, at: float | None = None,
    ) -> float:
        """Per-simulated-second rate of a cumulative series."""
        window = self.interval_s if window_s is None else window_s
        if window <= 0:
            return 0.0
        return self.delta(name, labels, window, at) / window

    def window_values(
        self, name: str, labels: dict | None = None,
        window_s: float = math.inf, at: float | None = None,
    ) -> list[float]:
        """Raw sampled values of a series inside the trailing window."""
        points = self._series(name, labels)
        if not points:
            return []
        at = points[-1][0] if at is None else at
        lo = at - window_s
        return [v for t, v in points if lo < t <= at]

    def _hist_snapshots(self, name: str, labels: dict | None):
        return self._hist.get((name, _label_key(labels or {})))

    def _hist_window_delta(self, name, labels, window_s, at):
        snaps = self._hist_snapshots(name, labels)
        if not snaps:
            return None
        at = snaps[-1][0] if at is None else at
        lo = at - window_s
        end = start = None
        for snap in snaps:
            if snap[0] > at:
                break
            end = snap
            if snap[0] <= lo:
                start = snap
        if end is None:
            return None
        bounds = self._hist_bounds[(name, _label_key(labels or {}))]
        if start is None:
            return bounds, end[1], list(end[3])
        counts = [e - s for e, s in zip(end[3], start[3])]
        return bounds, end[1] - start[1], counts

    def window_quantile(
        self, name: str, q: float, labels: dict | None = None,
        window_s: float = math.inf, at: float | None = None,
    ) -> float | None:
        """Nearest-rank quantile of a scraped histogram's observations
        that landed inside the trailing window (bucket-delta estimate,
        reported at bucket upper bounds).  ``None`` with no observations."""
        got = self._hist_window_delta(name, labels, window_s, at)
        if got is None:
            return None
        bounds, total, cumulative = got
        if total <= 0:
            return None
        rank = max(1, math.ceil(q * total))
        for i, c in enumerate(cumulative):
            if c >= rank:
                return bounds[i] if i < len(bounds) else math.inf
        return math.inf

    def window_fraction_above(
        self, name: str, threshold: float, labels: dict | None = None,
        window_s: float = math.inf, at: float | None = None,
    ) -> float | None:
        """Fraction of windowed histogram observations above ``threshold``
        (conservative: a bucket counts as below iff its upper bound is
        ``<= threshold``).  ``None`` with no observations in the window."""
        got = self._hist_window_delta(name, labels, window_s, at)
        if got is None:
            return None
        bounds, total, cumulative = got
        if total <= 0:
            return None
        below = 0
        for bound, c in zip(bounds, cumulative):
            if bound <= threshold:
                below = c
            else:
                break
        return (total - below) / total

    # -- export ------------------------------------------------------------

    def to_dict(self) -> dict:
        series: dict[str, list] = {}
        for key in sorted(self._points):
            name, _lk = key
            series.setdefault(name, []).append(
                {"labels": self._labels[key], "points": [[t, v] for t, v in self._points[key]]}
            )
        histograms: dict[str, list] = {}
        for key in sorted(self._hist):
            name, _lk = key
            histograms.setdefault(name, []).append(
                {
                    "labels": self._labels[key],
                    "bounds": self._hist_bounds[key] + ["+Inf"],
                    "snapshots": [
                        {"t": t, "count": count, "sum": total, "buckets": list(cum)}
                        for t, count, total, cum in self._hist[key]
                    ],
                }
            )
        return {
            "scrape_interval_s": self.interval_s,
            "samples": len(self.times),
            "times": list(self.times),
            "series": series,
            "histograms": histograms,
        }

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys): same seed + interval ⇒
        byte-identical TIMESERIES.json."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    def openmetrics(self) -> str:
        """OpenMetrics-style text: every sample point with its simulated
        timestamp; histograms as their final snapshot with exemplars
        (``# {trace_id="..."} value`` syntax); ``# EOF`` terminated."""
        lines: list[str] = []
        emitted_type: set[str] = set()
        registry = self.cluster.metrics.registry

        def fmt_labels(labels: dict, extra: dict | None = None) -> str:
            merged = dict(labels)
            if extra:
                merged.update(extra)
            if not merged:
                return ""
            inner = ",".join(
                f'{k}="{v}"' for k, v in sorted(merged.items())
            )
            return "{" + inner + "}"

        for key in sorted(self._points):
            name, _lk = key
            if name not in emitted_type:
                kind = "gauge"
                if registry is not None and name in registry._families:
                    kind = registry._families[name].kind
                lines.append(f"# TYPE {name} {kind}")
                emitted_type.add(name)
            label_str = fmt_labels(self._labels[key])
            for t, v in self._points[key]:
                lines.append(f"{name}{label_str} {_fmt_value(v)} {t}")

        for key in sorted(self._hist):
            name, _lk = key
            if name not in emitted_type:
                lines.append(f"# TYPE {name} histogram")
                emitted_type.add(name)
            labels = self._labels[key]
            t, count, total, cum = self._hist[key][-1]
            bounds = self._hist_bounds[key]
            exemplars: dict[int, tuple[float, int]] = {}
            if registry is not None and name in registry._families:
                inst = registry._families[name].metrics.get(_label_key(labels))
                if isinstance(inst, Histogram):
                    exemplars = inst.exemplars
            for i, (bound, c) in enumerate(zip(bounds + [math.inf], cum)):
                line = (
                    f"{name}_bucket"
                    f"{fmt_labels(labels, {'le': _fmt_value(bound)})} {c} {t}"
                )
                ex = exemplars.get(i)
                if ex is not None:
                    value, trace_id = ex
                    line += f' # {{trace_id="{trace_id}"}} {_fmt_value(value)}'
                lines.append(line)
            lines.append(f"{name}_sum{fmt_labels(labels)} {_fmt_value(total)} {t}")
            lines.append(f"{name}_count{fmt_labels(labels)} {count} {t}")

        lines.append("# EOF")
        return "\n".join(lines) + "\n"


def install_telemetry(cluster, config) -> None:
    """Install the continuous-telemetry layer behind the store knobs.

    Idempotent for the store pair sharing one cluster (same pattern as
    admission control / QoS) and a no-op at the default knobs.  Enabling
    any telemetry knob force-installs a metrics registry; exemplars also
    force-install the tracer (trace ids must exist to be captured).
    """
    scrape = getattr(config, "scrape_interval_s", 0.0) or 0.0
    slo = getattr(config, "slo_enabled", False)
    exemplars = getattr(config, "exemplars_enabled", False)
    if not scrape and not slo and not exemplars:
        return
    sim = cluster.sim
    if exemplars and sim.tracer is None:
        sim.tracer = Tracer(sim)
    if cluster.metrics.registry is None:
        cluster.metrics.registry = MetricsRegistry(exemplars_enabled=exemplars)
    elif exemplars:
        cluster.metrics.registry.exemplars_enabled = True
    if (scrape or slo) and getattr(cluster, "scraper", None) is None:
        interval = scrape if scrape > 0 else 0.25
        scraper = Scraper(cluster, interval)
        scraper.install()
        cluster.scraper = scraper
    if slo and getattr(cluster, "slo", None) is None:
        from repro.obs.slo import SLOEngine, default_objectives

        cluster.slo = SLOEngine(
            cluster.scraper,
            default_objectives(config),
            registry=cluster.metrics.registry,
            tracer=sim.tracer,
        )


__all__ = ["BREAKER_STATE_VALUE", "Scraper", "install_telemetry"]
