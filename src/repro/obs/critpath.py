"""Critical-path analysis over recorded query traces: where did p99 go?

A query's wall time is not the sum of its spans — fan-out overlaps disk,
CPU and network work freely.  What determines latency is the *critical
path*: the single chain of spans that ends when the query ends and,
walking backwards, at every point continues into whichever child was
still running.  Time on that chain that no deeper span accounts for is
the parent's own (self) time.

:class:`CriticalPathAnalyzer` walks one root span's subtree backwards
from its end, attributing every second of the root's duration to a
resource category:

* ``queue_wait`` — ``queue.wait`` spans opened by ``Resource.acquire``
  while an op sat in a service queue (further split per node via the
  span's ``node`` arg);
* ``disk`` / ``cpu`` / ``network`` — device service spans;
* ``retry_slack`` — ``rpc.timeout_wait`` spans (time burned waiting for
  an RPC that was already lost);
* ``coord`` — anything else (coordinator logic, unattributed gaps).

Aggregated over the affected-query population this answers the paper's
operational question directly: a disk storm shows up as p99 dominated by
``queue_wait`` on the stormed node, not as a uniform slowdown.
"""

from __future__ import annotations

#: span name -> attribution category; names not listed fall to "coord".
CATEGORY_OF = {
    "queue.wait": "queue_wait",
    "disk.read": "disk",
    "disk.write": "disk",
    "cpu.compute": "cpu",
    "net.transfer": "network",
    "rpc.timeout_wait": "retry_slack",
}

CATEGORIES = ("queue_wait", "disk", "cpu", "network", "retry_slack", "coord")


class PathSegment:
    """One contiguous stretch of the critical path owned by one span."""

    __slots__ = ("span", "category", "start", "end")

    def __init__(self, span, category: str, start: float, end: float) -> None:
        self.span = span
        self.category = category
        self.start = start
        self.end = end

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "span": self.span.name,
            "span_id": self.span.span_id,
            "category": self.category,
            "node": self.span.args.get("node"),
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }


class CriticalPathAnalyzer:
    """Critical-path extraction and latency attribution for one tracer."""

    def __init__(self, tracer) -> None:
        self.tracer = tracer
        self._horizon = tracer.sim.now
        self._children: dict[int, list] = {}
        for span in tracer.spans:
            if span.parent_id is not None:
                self._children.setdefault(span.parent_id, []).append(span)

    def _end(self, span) -> float:
        end = span.end if span.end is not None else max(self._horizon, span.start)
        return end

    def critical_path(self, root) -> list[PathSegment]:
        """The root span's duration as an ordered list of segments.

        Backward walk: from the root's end, repeatedly descend into the
        child whose (clamped) interval ends latest at or before the
        cursor, attribute the stretch the cursor skips over to the
        deepest span that covers it, and stop at the root's start.
        Segments are returned in time order and tile ``[start, end]``
        exactly — their durations sum to the root's duration.
        """
        segments: list[PathSegment] = []
        self._walk(root, root.start, self._end(root), segments)
        segments.reverse()
        return segments

    def _walk(self, span, lo: float, hi: float, out: list[PathSegment]) -> None:
        """Attribute ``[lo, hi]`` of ``span``'s interval, appending
        segments in *reverse* time order (the caller reverses once)."""
        category = CATEGORY_OF.get(span.name, "coord")
        cursor = hi
        while cursor > lo:
            best = None
            best_end = lo
            for child in self._children.get(span.span_id, ()):
                c_start = max(child.start, lo)
                c_end = min(self._end(child), cursor)
                if c_end <= c_start:  # zero-length or outside the window
                    continue
                if best is None or c_end > best_end or (
                    c_end == best_end and child.span_id > best.span_id
                ):
                    best = child
                    best_end = c_end
            if best is None:
                out.append(PathSegment(span, category, lo, cursor))
                return
            if best_end < cursor:  # gap after the last child: span's own time
                out.append(PathSegment(span, category, best_end, cursor))
            self._walk(best, max(best.start, lo), best_end, out)
            cursor = max(best.start, lo)

    # -- attribution -------------------------------------------------------

    def attribute(self, root) -> dict:
        """Per-category seconds (plus per-node queue-wait) for one query."""
        by_category = {cat: 0.0 for cat in CATEGORIES}
        queue_by_node: dict[str, float] = {}
        for seg in self.critical_path(root):
            by_category[seg.category] += seg.duration
            if seg.category == "queue_wait":
                node = seg.span.args.get("node")
                key = str(node) if node is not None else "?"
                queue_by_node[key] = queue_by_node.get(key, 0.0) + seg.duration
        return {
            "root": root.name,
            "span_id": root.span_id,
            "duration": self._end(root) - root.start,
            "by_category": by_category,
            "queue_wait_by_node": queue_by_node,
        }

    def aggregate(self, roots) -> dict:
        """Attribution summed over a query population ("where did p99 go").

        Returns total seconds per category, per-node queue wait, and each
        category's fraction of the population's summed wall time.
        """
        by_category = {cat: 0.0 for cat in CATEGORIES}
        queue_by_node: dict[str, float] = {}
        total = 0.0
        count = 0
        for root in roots:
            one = self.attribute(root)
            count += 1
            total += one["duration"]
            for cat, sec in one["by_category"].items():
                by_category[cat] += sec
            for node, sec in one["queue_wait_by_node"].items():
                queue_by_node[node] = queue_by_node.get(node, 0.0) + sec
        fractions = {
            cat: (sec / total if total > 0 else 0.0)
            for cat, sec in by_category.items()
        }
        return {
            "queries": count,
            "total_seconds": total,
            "by_category": by_category,
            "fraction": fractions,
            "queue_wait_by_node": queue_by_node,
        }

    def report(self, roots, title: str = "critical-path attribution") -> str:
        """Human-readable aggregate report for a set of query roots."""
        agg = self.aggregate(roots)
        lines = [
            f"{title}: {agg['queries']} queries, "
            f"{agg['total_seconds']:.6f}s total wall",
            f"{'category':>12s}  {'seconds':>12s}  {'share':>7s}",
        ]
        for cat in CATEGORIES:
            sec = agg["by_category"][cat]
            if sec <= 0:
                continue
            lines.append(f"{cat:>12s}  {sec:12.6f}  {agg['fraction'][cat]:6.1%}")
        if agg["queue_wait_by_node"]:
            lines.append("queue wait by node:")
            for node in sorted(
                agg["queue_wait_by_node"],
                key=lambda n: -agg["queue_wait_by_node"][n],
            ):
                lines.append(f"{'node ' + node:>12s}  "
                             f"{agg['queue_wait_by_node'][node]:12.6f}")
        return "\n".join(lines)


def slowest_roots(tracer, name: str, fraction: float = 0.01) -> list:
    """The slowest ``fraction`` of closed spans named ``name`` (≥1).

    Convenience selector for "analyze the p99 tail": pass the query root
    span name (e.g. ``"query"``) and feed the result to
    :meth:`CriticalPathAnalyzer.aggregate`.
    """
    roots = [s for s in tracer.find(name) if s.end is not None]
    if not roots:
        return []
    roots.sort(key=lambda s: s.end - s.start, reverse=True)
    keep = max(1, int(len(roots) * fraction))
    return roots[:keep]


__all__ = [
    "CATEGORIES",
    "CATEGORY_OF",
    "CriticalPathAnalyzer",
    "PathSegment",
    "slowest_roots",
]
