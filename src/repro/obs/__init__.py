"""Observability: tracing, metrics registry, and pushdown decision audit.

Three pillars, all driven by the *simulated* clock so every artefact is
deterministic (same workload, bit-identical trace):

* :class:`Tracer` — span-based tracing with zero-cost-when-disabled
  context-manager spans, exported as Chrome ``trace_event`` JSON
  (loadable in Perfetto / ``chrome://tracing``) plus a plain-text
  flamegraph-style summary.
* :class:`MetricsRegistry` — named counters/gauges/histograms
  (log-bucketed latency and byte histograms with p50/p95/p99) with a
  Prometheus-text ``export()`` and a JSON-able ``to_dict()``.
* :class:`PushdownAuditLog` — one record per Cost-Equation evaluation
  (estimate, decision, actual bytes), queryable after a run for
  ex-post decision-accuracy reporting.

Layered on top, the *continuous telemetry* plane:

* :class:`Scraper` — a simulated-clock sampler that snapshots the
  registry and live cluster state (queue depths, breaker states,
  health, repair/rebalance bytes, tenant deficits) every
  ``scrape_interval_s`` seconds into in-memory time series, with
  delta/rate/windowed-quantile derivation and ``TIMESERIES.json`` /
  OpenMetrics export.
* :class:`SLOEngine` — declarative :class:`SLObjective`\\ s evaluated at
  every scrape with multi-window burn-rate alerting (typed
  :class:`Alert` records, ``repro_alerts_total``, tracer instants).
* :class:`CriticalPathAnalyzer` — walks a query's span tree and
  attributes its latency to queue-wait / disk / cpu / network / retry
  slack: "where did p99 go".

Everything attaches behind default-off
:class:`~repro.core.config.StoreConfig` knobs and never touches the
simulation's event heap (the scraper rides the kernel's clock-listener
hook), so runs are event-identical with observability on or off.
"""

from repro.obs.audit import PushdownAuditLog, PushdownAuditRecord
from repro.obs.critpath import CriticalPathAnalyzer, slowest_roots
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    export_merged,
)
from repro.obs.slo import Alert, SLObjective, SLOEngine, default_objectives
from repro.obs.timeseries import Scraper, install_telemetry
from repro.obs.tracer import Span, Tracer, traced
from repro.obs.validate import (
    validate_alerts,
    validate_chrome_trace,
    validate_prometheus_text,
    validate_timeseries,
)

__all__ = [
    "Alert",
    "Counter",
    "CriticalPathAnalyzer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PushdownAuditLog",
    "PushdownAuditRecord",
    "SLOEngine",
    "SLObjective",
    "Scraper",
    "Span",
    "Tracer",
    "default_objectives",
    "export_merged",
    "install_telemetry",
    "slowest_roots",
    "traced",
    "validate_alerts",
    "validate_chrome_trace",
    "validate_prometheus_text",
    "validate_timeseries",
]
