"""Observability: tracing, metrics registry, and pushdown decision audit.

Three pillars, all driven by the *simulated* clock so every artefact is
deterministic (same workload, bit-identical trace):

* :class:`Tracer` — span-based tracing with zero-cost-when-disabled
  context-manager spans, exported as Chrome ``trace_event`` JSON
  (loadable in Perfetto / ``chrome://tracing``) plus a plain-text
  flamegraph-style summary.
* :class:`MetricsRegistry` — named counters/gauges/histograms
  (log-bucketed latency and byte histograms with p50/p95/p99) with a
  Prometheus-text ``export()`` and a JSON-able ``to_dict()``.
* :class:`PushdownAuditLog` — one record per Cost-Equation evaluation
  (estimate, decision, actual bytes), queryable after a run for
  ex-post decision-accuracy reporting.

All three attach behind default-off :class:`~repro.core.config.StoreConfig`
knobs and never touch the simulation's event heap, so fault-free runs
are event-identical with observability on or off.
"""

from repro.obs.audit import PushdownAuditLog, PushdownAuditRecord
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    export_merged,
)
from repro.obs.tracer import Span, Tracer, traced
from repro.obs.validate import validate_chrome_trace, validate_prometheus_text

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PushdownAuditLog",
    "PushdownAuditRecord",
    "Span",
    "Tracer",
    "export_merged",
    "traced",
    "validate_chrome_trace",
    "validate_prometheus_text",
]
