"""Validators for the observability artifacts, usable as a CLI.

* :func:`validate_chrome_trace` — structural checks over a Chrome
  ``trace_event`` document: every event has a known ``ph`` and
  well-formed ``ts``/``pid``/``tid`` fields, and each ``(pid, tid)``
  track's ``B``/``E`` stream is balanced (stack discipline, matching
  names, non-decreasing timestamps).
* :func:`validate_prometheus_text` — line-level parse of the Prometheus
  text exposition format: sample lines match the grammar, ``TYPE``
  declarations are known, histogram families carry ``_bucket``/``_sum``/
  ``_count`` series and bucket counts are monotone in ``le``.

CI runs both over a real experiment's artifacts::

    python -m repro.obs.validate --trace trace.json --prom METRICS.prom
"""

from __future__ import annotations

import json
import re
import sys

_KNOWN_PHASES = set("BEXiIMCbnePsSfFtNOD")

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))"
    r"(?:\s+[0-9]+)?$"
)
_LABEL_PAIR_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def validate_chrome_trace(trace) -> list[str]:
    """Problems found in a Chrome trace-event document (empty: valid)."""
    problems: list[str] = []
    if isinstance(trace, dict):
        events = trace.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object has no 'traceEvents' list"]
    elif isinstance(trace, list):
        events = trace
    else:
        return [f"trace must be a dict or list, got {type(trace).__name__}"]

    stacks: dict[tuple, list[tuple[str, float]]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _KNOWN_PHASES:
            problems.append(f"event {i}: bad ph {ph!r}")
            continue
        pid, tid = ev.get("pid"), ev.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            problems.append(f"event {i}: pid/tid must be ints, got {pid!r}/{tid!r}")
            continue
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)):
                problems.append(f"event {i}: ph={ph} needs a numeric ts, got {ts!r}")
                continue
            if ts < 0:
                problems.append(f"event {i}: negative ts {ts}")
        name = ev.get("name")
        if ph in ("B", "E", "X", "i", "M") and ph != "E" and not isinstance(name, str):
            problems.append(f"event {i}: ph={ph} needs a string name")
            continue
        if ph == "B":
            stacks.setdefault((pid, tid), []).append((name, ev["ts"]))
        elif ph == "E":
            stack = stacks.setdefault((pid, tid), [])
            if not stack:
                problems.append(f"event {i}: E with empty stack on (pid={pid}, tid={tid})")
                continue
            open_name, open_ts = stack.pop()
            if isinstance(name, str) and name != open_name:
                problems.append(
                    f"event {i}: E name {name!r} does not match open B {open_name!r} "
                    f"on (pid={pid}, tid={tid})"
                )
            if ev["ts"] < open_ts:
                problems.append(
                    f"event {i}: E at ts={ev['ts']} before its B at ts={open_ts}"
                )
    for (pid, tid), stack in stacks.items():
        if stack:
            names = [n for n, _ts in stack]
            problems.append(
                f"unbalanced B/E on (pid={pid}, tid={tid}): {len(stack)} unclosed {names}"
            )
    return problems


def validate_prometheus_text(text: str) -> list[str]:
    """Problems found in a Prometheus text exposition (empty: valid)."""
    problems: list[str] = []
    types: dict[str, str] = {}
    samples: dict[str, list[tuple[dict, float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    problems.append(f"line {lineno}: unknown TYPE {kind!r}")
                else:
                    types[parts[2]] = kind
            elif len(parts) >= 2 and parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {lineno}: unknown comment directive {parts[1]!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            body = raw[1:-1].strip()
            if body:
                for pair in _split_label_pairs(body):
                    if not _LABEL_PAIR_RE.match(pair):
                        problems.append(f"line {lineno}: bad label pair {pair!r}")
                        continue
                    key, _eq, val = pair.partition("=")
                    labels[key] = val[1:-1]
        value = match.group("value")
        parsed = float("inf") if value == "Inf" else float("nan") if value == "NaN" else float(value)
        samples.setdefault(match.group("name"), []).append((labels, parsed))

    for family, kind in types.items():
        if kind == "histogram":
            buckets = samples.get(f"{family}_bucket", [])
            if not buckets:
                problems.append(f"histogram {family!r} has no _bucket samples")
            if not samples.get(f"{family}_sum"):
                problems.append(f"histogram {family!r} has no _sum sample")
            if not samples.get(f"{family}_count"):
                problems.append(f"histogram {family!r} has no _count sample")
            series: dict[tuple, list[tuple[float, float]]] = {}
            for labels, value in buckets:
                le = labels.get("le")
                if le is None:
                    problems.append(f"histogram {family!r} bucket missing 'le' label")
                    continue
                bound = float("inf") if le == "+Inf" else float(le)
                key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
                series.setdefault(key, []).append((bound, value))
            for key, points in series.items():
                points.sort()
                if not points or points[-1][0] != float("inf"):
                    problems.append(f"histogram {family!r}{dict(key)} lacks an +Inf bucket")
                counts = [v for _b, v in points]
                if any(b > a_next for b, a_next in zip(counts, counts[1:])):
                    problems.append(
                        f"histogram {family!r}{dict(key)} bucket counts not monotone"
                    )
        else:
            named = [n for n in samples if n == family]
            if not named:
                problems.append(f"{kind} {family!r} declared but has no samples")
    return problems


def _split_label_pairs(body: str) -> list[str]:
    """Split 'a="x",b="y,z"' on commas outside quoted values."""
    pairs, current, in_quotes, escaped = [], [], False, False
    for ch in body:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            pairs.append("".join(current).strip())
            current = []
            continue
        current.append(ch)
    if current:
        pairs.append("".join(current).strip())
    return pairs


def main(argv: list[str]) -> int:
    trace_path = prom_path = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--trace" and args:
            trace_path = args.pop(0)
        elif arg == "--prom" and args:
            prom_path = args.pop(0)
        else:
            print(__doc__)
            return 1
    if trace_path is None and prom_path is None:
        print(__doc__)
        return 1
    failures = 0
    if trace_path is not None:
        with open(trace_path) as fh:
            trace = json.load(fh)
        problems = validate_chrome_trace(trace)
        events = trace["traceEvents"] if isinstance(trace, dict) else trace
        if problems:
            failures += 1
            print(f"{trace_path}: INVALID ({len(problems)} problem(s))")
            for p in problems[:20]:
                print(f"  - {p}")
        else:
            print(f"{trace_path}: OK ({len(events)} events)")
    if prom_path is not None:
        with open(prom_path) as fh:
            text = fh.read()
        problems = validate_prometheus_text(text)
        if problems:
            failures += 1
            print(f"{prom_path}: INVALID ({len(problems)} problem(s))")
            for p in problems[:20]:
                print(f"  - {p}")
        else:
            print(f"{prom_path}: OK ({len(text.splitlines())} lines)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
