"""Validators for the observability artifacts, usable as a CLI.

* :func:`validate_chrome_trace` — structural checks over a Chrome
  ``trace_event`` document: every event has a known ``ph`` and
  well-formed ``ts``/``pid``/``tid`` fields, and each ``(pid, tid)``
  track's ``B``/``E`` stream is balanced (stack discipline, matching
  names, non-decreasing timestamps).
* :func:`validate_prometheus_text` — line-level parse of the Prometheus
  text exposition format: sample lines match the grammar, ``TYPE``
  declarations are known, histogram families carry ``_bucket``/``_sum``/
  ``_count`` series and bucket counts are monotone in ``le``.
* :func:`validate_timeseries` — structural checks over a scraper's
  ``TIMESERIES.json``: sample times strictly increasing on the scrape
  grid, every series point on a sampled time, histogram snapshots with
  monotone cumulative buckets and consistent bounds.
* :func:`validate_alerts` — checks an SLO engine's ``ALERTS.json``:
  alerts reference declared objectives, fire inside the run, windows
  positive, resolution not before firing.

CI runs them over a real experiment's artifacts::

    python -m repro.obs.validate --trace trace.json --prom METRICS.prom \\
        --timeseries TIMESERIES.json --alerts ALERTS.json
"""

from __future__ import annotations

import json
import re
import sys

_KNOWN_PHASES = set("BEXiIMCbnePsSfFtNOD")

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))"
    r"(?:\s+[0-9]+)?$"
)
_LABEL_PAIR_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def validate_chrome_trace(trace) -> list[str]:
    """Problems found in a Chrome trace-event document (empty: valid)."""
    problems: list[str] = []
    if isinstance(trace, dict):
        events = trace.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object has no 'traceEvents' list"]
    elif isinstance(trace, list):
        events = trace
    else:
        return [f"trace must be a dict or list, got {type(trace).__name__}"]

    stacks: dict[tuple, list[tuple[str, float]]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _KNOWN_PHASES:
            problems.append(f"event {i}: bad ph {ph!r}")
            continue
        pid, tid = ev.get("pid"), ev.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            problems.append(f"event {i}: pid/tid must be ints, got {pid!r}/{tid!r}")
            continue
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)):
                problems.append(f"event {i}: ph={ph} needs a numeric ts, got {ts!r}")
                continue
            if ts < 0:
                problems.append(f"event {i}: negative ts {ts}")
        name = ev.get("name")
        if ph in ("B", "E", "X", "i", "M") and ph != "E" and not isinstance(name, str):
            problems.append(f"event {i}: ph={ph} needs a string name")
            continue
        if ph == "B":
            stacks.setdefault((pid, tid), []).append((name, ev["ts"]))
        elif ph == "E":
            stack = stacks.setdefault((pid, tid), [])
            if not stack:
                problems.append(f"event {i}: E with empty stack on (pid={pid}, tid={tid})")
                continue
            open_name, open_ts = stack.pop()
            if isinstance(name, str) and name != open_name:
                problems.append(
                    f"event {i}: E name {name!r} does not match open B {open_name!r} "
                    f"on (pid={pid}, tid={tid})"
                )
            if ev["ts"] < open_ts:
                problems.append(
                    f"event {i}: E at ts={ev['ts']} before its B at ts={open_ts}"
                )
    for (pid, tid), stack in stacks.items():
        if stack:
            names = [n for n, _ts in stack]
            problems.append(
                f"unbalanced B/E on (pid={pid}, tid={tid}): {len(stack)} unclosed {names}"
            )
    return problems


def validate_prometheus_text(text: str) -> list[str]:
    """Problems found in a Prometheus text exposition (empty: valid)."""
    problems: list[str] = []
    types: dict[str, str] = {}
    samples: dict[str, list[tuple[dict, float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    problems.append(f"line {lineno}: unknown TYPE {kind!r}")
                else:
                    types[parts[2]] = kind
            elif len(parts) >= 2 and parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {lineno}: unknown comment directive {parts[1]!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            body = raw[1:-1].strip()
            if body:
                for pair in _split_label_pairs(body):
                    if not _LABEL_PAIR_RE.match(pair):
                        problems.append(f"line {lineno}: bad label pair {pair!r}")
                        continue
                    key, _eq, val = pair.partition("=")
                    labels[key] = val[1:-1]
        value = match.group("value")
        parsed = float("inf") if value == "Inf" else float("nan") if value == "NaN" else float(value)
        samples.setdefault(match.group("name"), []).append((labels, parsed))

    for family, kind in types.items():
        if kind == "histogram":
            buckets = samples.get(f"{family}_bucket", [])
            if not buckets:
                problems.append(f"histogram {family!r} has no _bucket samples")
            if not samples.get(f"{family}_sum"):
                problems.append(f"histogram {family!r} has no _sum sample")
            if not samples.get(f"{family}_count"):
                problems.append(f"histogram {family!r} has no _count sample")
            series: dict[tuple, list[tuple[float, float]]] = {}
            for labels, value in buckets:
                le = labels.get("le")
                if le is None:
                    problems.append(f"histogram {family!r} bucket missing 'le' label")
                    continue
                bound = float("inf") if le == "+Inf" else float(le)
                key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
                series.setdefault(key, []).append((bound, value))
            for key, points in series.items():
                points.sort()
                if not points or points[-1][0] != float("inf"):
                    problems.append(f"histogram {family!r}{dict(key)} lacks an +Inf bucket")
                counts = [v for _b, v in points]
                if any(b > a_next for b, a_next in zip(counts, counts[1:])):
                    problems.append(
                        f"histogram {family!r}{dict(key)} bucket counts not monotone"
                    )
        else:
            named = [n for n in samples if n == family]
            if not named:
                problems.append(f"{kind} {family!r} declared but has no samples")
    return problems


def _per_system(doc, marker: str):
    """A harness export maps "system#pid" -> per-system document; detect
    that shape (no ``marker`` key, every value an object carrying it)."""
    if (
        isinstance(doc, dict)
        and doc
        and marker not in doc
        and all(isinstance(v, dict) and marker in v for v in doc.values())
    ):
        return doc
    return None


def validate_timeseries(doc) -> list[str]:
    """Problems found in a scraper's TIMESERIES.json (empty: valid).

    Accepts either one scraper document or a harness export mapping
    ``"system#pid"`` to per-system documents."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"timeseries must be an object, got {type(doc).__name__}"]
    systems = _per_system(doc, "scrape_interval_s")
    if systems is not None:
        for system in sorted(systems):
            problems.extend(
                f"[{system}] {p}" for p in validate_timeseries(systems[system])
            )
        return problems
    interval = doc.get("scrape_interval_s")
    if not isinstance(interval, (int, float)) or interval <= 0:
        problems.append(f"scrape_interval_s must be > 0, got {interval!r}")
    times = doc.get("times")
    if not isinstance(times, list):
        return problems + ["'times' must be a list"]
    for a, b in zip(times, times[1:]):
        if b <= a:
            problems.append(f"sample times not strictly increasing: {a} -> {b}")
            break
    if doc.get("samples") != len(times):
        problems.append(
            f"samples={doc.get('samples')!r} disagrees with len(times)={len(times)}"
        )
    sampled = set(times)
    for name, variants in (doc.get("series") or {}).items():
        if not isinstance(variants, list):
            problems.append(f"series {name!r}: variants must be a list")
            continue
        for variant in variants:
            points = variant.get("points", [])
            for t, _v in points:
                if t not in sampled:
                    problems.append(f"series {name!r}: point at unsampled t={t}")
                    break
            for (t0, _a), (t1, _b) in zip(points, points[1:]):
                if t1 <= t0:
                    problems.append(f"series {name!r}: point times not increasing")
                    break
    for name, variants in (doc.get("histograms") or {}).items():
        for variant in variants:
            bounds = variant.get("bounds", [])
            if not bounds or bounds[-1] != "+Inf":
                problems.append(f"histogram {name!r}: bounds must end with +Inf")
            for snap in variant.get("snapshots", []):
                t = snap.get("t")
                if t not in sampled:
                    problems.append(f"histogram {name!r}: snapshot at unsampled t={t}")
                    break
                buckets = snap.get("buckets", [])
                if len(buckets) != len(bounds):
                    problems.append(
                        f"histogram {name!r}: snapshot at t={t} has "
                        f"{len(buckets)} buckets for {len(bounds)} bounds"
                    )
                    break
                if any(b > a for a, b in zip(buckets[1:], buckets)):
                    problems.append(
                        f"histogram {name!r}: cumulative buckets not monotone at t={t}"
                    )
                    break
                if buckets and snap.get("count") != buckets[-1]:
                    problems.append(
                        f"histogram {name!r}: count != +Inf bucket at t={t}"
                    )
                    break
    return problems


def validate_alerts(doc) -> list[str]:
    """Problems found in an SLO engine's ALERTS.json (empty: valid).

    Accepts either one engine document or a harness export mapping
    ``"system#pid"`` to per-system documents."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"alerts must be an object, got {type(doc).__name__}"]
    systems = _per_system(doc, "objectives")
    if systems is not None:
        for system in sorted(systems):
            problems.extend(
                f"[{system}] {p}" for p in validate_alerts(systems[system])
            )
        return problems
    objectives = doc.get("objectives")
    if not isinstance(objectives, list):
        return ["'objectives' must be a list"]
    names = set()
    for obj in objectives:
        name = obj.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"objective without a name: {obj!r}")
            continue
        if name in names:
            problems.append(f"duplicate objective name {name!r}")
        names.add(name)
        if obj.get("kind") not in ("availability", "latency_p99", "gauge_above"):
            problems.append(f"objective {name!r}: unknown kind {obj.get('kind')!r}")
    for i, alert in enumerate(doc.get("alerts") or []):
        slo = alert.get("slo")
        if slo not in names:
            problems.append(f"alert {i}: references undeclared SLO {slo!r}")
        t = alert.get("time")
        if not isinstance(t, (int, float)) or t < 0:
            problems.append(f"alert {i}: bad time {t!r}")
            continue
        for key in ("short_window_s", "long_window_s"):
            if not alert.get(key) or alert[key] <= 0:
                problems.append(f"alert {i}: {key} must be > 0")
        resolved = alert.get("resolved_time")
        if resolved is not None and resolved < t:
            problems.append(f"alert {i}: resolved at {resolved} before firing at {t}")
    for name in doc.get("firing") or []:
        if name not in names:
            problems.append(f"firing references undeclared SLO {name!r}")
    return problems


def _split_label_pairs(body: str) -> list[str]:
    """Split 'a="x",b="y,z"' on commas outside quoted values."""
    pairs, current, in_quotes, escaped = [], [], False, False
    for ch in body:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            pairs.append("".join(current).strip())
            current = []
            continue
        current.append(ch)
    if current:
        pairs.append("".join(current).strip())
    return pairs


def _report(path: str, problems: list[str], ok_detail: str) -> int:
    if problems:
        print(f"{path}: INVALID ({len(problems)} problem(s))")
        for p in problems[:20]:
            print(f"  - {p}")
        return 1
    print(f"{path}: OK ({ok_detail})")
    return 0


def main(argv: list[str]) -> int:
    trace_path = prom_path = ts_path = alerts_path = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--trace" and args:
            trace_path = args.pop(0)
        elif arg == "--prom" and args:
            prom_path = args.pop(0)
        elif arg == "--timeseries" and args:
            ts_path = args.pop(0)
        elif arg == "--alerts" and args:
            alerts_path = args.pop(0)
        else:
            print(__doc__)
            return 1
    if trace_path is None and prom_path is None and ts_path is None and alerts_path is None:
        print(__doc__)
        return 1
    failures = 0
    if trace_path is not None:
        with open(trace_path) as fh:
            trace = json.load(fh)
        events = trace["traceEvents"] if isinstance(trace, dict) else trace
        failures += _report(
            trace_path, validate_chrome_trace(trace), f"{len(events)} events"
        )
    if prom_path is not None:
        with open(prom_path) as fh:
            text = fh.read()
        failures += _report(
            prom_path, validate_prometheus_text(text), f"{len(text.splitlines())} lines"
        )
    if ts_path is not None:
        with open(ts_path) as fh:
            doc = json.load(fh)
        if isinstance(doc, dict):
            systems = _per_system(doc, "scrape_interval_s")
            if systems is not None:
                samples = sum(d.get("samples", 0) for d in systems.values())
            else:
                samples = doc.get("samples", 0)
        else:
            samples = 0
        failures += _report(ts_path, validate_timeseries(doc), f"{samples} samples")
    if alerts_path is not None:
        with open(alerts_path) as fh:
            doc = json.load(fh)
        if isinstance(doc, dict):
            systems = _per_system(doc, "objectives")
            if systems is not None:
                n = sum(len(d.get("alerts") or []) for d in systems.values())
            else:
                n = len(doc.get("alerts") or [])
        else:
            n = 0
        failures += _report(alerts_path, validate_alerts(doc), f"{n} alert(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
