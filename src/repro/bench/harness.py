"""Experiment harness: build store pairs, drive concurrent query workloads.

The paper's evaluation methodology: 10 client threads issue queries
against the store and report median/tail latency.  Here each system under
test gets its *own* simulator and cluster (they must not contend with each
other), loaded with the same dataset, and a closed-loop client pool drives
the workload inside the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.metrics import CATEGORIES, QueryMetrics, percentile
from repro.cluster.simcore import Simulator
from repro.core.baseline_store import BaselineStore
from repro.core.config import StoreConfig
from repro.core.store import FusionStore
from repro.obs.registry import MetricsRegistry, export_merged
from repro.obs.slo import SLOEngine, default_objectives
from repro.obs.timeseries import Scraper
from repro.obs.tracer import Tracer
from repro.sql.local import QueryResult

#: Paper object sizes, for deriving per-dataset simulation scale factors.
PAPER_DATASET_BYTES = {
    "lineitem": 10 * 10**9,
    "taxi": int(8.4 * 10**9),
    "recipe": int(0.98 * 10**9),
    "ukpp": int(1.5 * 10**9),
}


@dataclass
class SystemUnderTest:
    """One store on its own simulated cluster."""

    name: str
    sim: Simulator
    cluster: Cluster
    store: FusionStore | BaselineStore


@dataclass
class WorkloadStats:
    """Latency and traffic statistics from one workload run."""

    system: str
    metrics: list[QueryMetrics]
    results: list[QueryResult]
    network_bytes: int
    wall_seconds: float
    cpu_utilization: float
    cpu_busy_seconds: float = 0.0

    @property
    def cpu_seconds_per_query(self) -> float:
        """Busy CPU core-seconds per completed query (load-normalised)."""
        if not self.metrics:
            return 0.0
        return self.cpu_busy_seconds / len(self.metrics)

    @property
    def latencies(self) -> list[float]:
        return [m.latency for m in self.metrics]

    @property
    def rpcs_issued(self) -> int:
        """Wire messages sent across all queries (loopback excluded)."""
        return sum(m.rpcs_issued for m in self.metrics)

    @property
    def rpcs_saved(self) -> int:
        """Per-op messages coalesced away by scatter-gather batching."""
        return sum(m.rpcs_saved for m in self.metrics)

    def mean_latency(self) -> float:
        if not self.metrics:
            return 0.0
        return sum(self.latencies) / len(self.metrics)

    def p50(self) -> float:
        return percentile(self.latencies, 50)

    def p99(self) -> float:
        return percentile(self.latencies, 99)

    def mean_breakdown(self) -> dict[str, float]:
        """Average per-category latency fraction across queries."""
        out = {c: 0.0 for c in CATEGORIES}
        for m in self.metrics:
            for c, v in m.breakdown_fractions().items():
                out[c] += v
        n = max(1, len(self.metrics))
        return {c: v / n for c, v in out.items()}


def reduction_pct(baseline: float, candidate: float) -> float:
    """Latency reduction of ``candidate`` relative to ``baseline`` (%)."""
    if baseline == 0:
        return 0.0
    return (baseline - candidate) / baseline * 100.0


#: When not None, :func:`build_system` attaches a :class:`Tracer` and a
#: :class:`MetricsRegistry` to every system it creates and records the
#: system here, so the CLI can export a merged trace and metrics dump
#: after the experiment ran.  Enabled by ``--trace-out``/``--metrics-out``
#: in :mod:`repro.bench.__main__`; never on during normal runs, so the
#: harness stays event-identical to the uninstrumented seed by default.
_OBS_CAPTURE: dict | None = None


def enable_obs_capture(
    scrape_interval: float = 0.0,
    slo: bool = False,
    exemplars: bool = False,
) -> None:
    """Start capturing traces and metrics from every system built.

    ``scrape_interval`` > 0 additionally installs a continuous-telemetry
    :class:`~repro.obs.timeseries.Scraper` on every system (``slo=True``
    adds the default SLO objectives on top); ``exemplars=True`` turns on
    histogram exemplars linking tail observations to trace ids.
    """
    global _OBS_CAPTURE
    _OBS_CAPTURE = {
        "systems": [],
        "scrape_interval": scrape_interval,
        "slo": slo,
        "exemplars": exemplars,
    }


def obs_capture_enabled() -> bool:
    return _OBS_CAPTURE is not None


def collect_obs() -> tuple[dict, str, dict]:
    """Exports from every system built since :func:`enable_obs_capture`.

    Returns ``(chrome_trace, prometheus_text, metrics_dict)`` where the
    Chrome trace merges all systems (one ``pid`` per system, named via
    ``process_name`` metadata), the Prometheus text is the merged export
    of every registry, and ``metrics_dict`` maps a per-system label to
    that registry's structured dump (the METRICS.json payload).
    """
    if _OBS_CAPTURE is None:
        raise RuntimeError("obs capture not enabled; call enable_obs_capture() first")
    events: list[dict] = []
    registries: list[MetricsRegistry] = []
    metrics: dict[str, dict] = {}
    for pid, sut in enumerate(_OBS_CAPTURE["systems"], start=1):
        label = f"{sut.name}#{pid}"
        if sut.sim.tracer is not None:
            events.extend(
                sut.sim.tracer.chrome_trace(pid=pid, process_name=label)["traceEvents"]
            )
        registry = sut.cluster.metrics.registry
        if registry is not None:
            registries.append(registry)
            metrics[label] = registry.to_dict()
    trace = {"traceEvents": events, "displayTimeUnit": "ms"}
    return trace, export_merged(registries), metrics


def collect_telemetry() -> tuple[dict, dict]:
    """Per-system timeseries and SLO exports from the captured systems.

    Returns ``(timeseries_dict, alerts_dict)``, each keyed by the same
    per-system label :func:`collect_obs` uses; systems without a scraper
    or SLO engine are simply absent from the respective dict.
    """
    if _OBS_CAPTURE is None:
        raise RuntimeError("obs capture not enabled; call enable_obs_capture() first")
    timeseries: dict[str, dict] = {}
    alerts: dict[str, dict] = {}
    for pid, sut in enumerate(_OBS_CAPTURE["systems"], start=1):
        label = f"{sut.name}#{pid}"
        if sut.cluster.scraper is not None:
            timeseries[label] = sut.cluster.scraper.to_dict()
        if sut.cluster.slo is not None:
            alerts[label] = sut.cluster.slo.to_dict()
    return timeseries, alerts


def build_system(
    kind: str,
    objects: dict[str, bytes],
    cluster_config: ClusterConfig | None = None,
    store_config: StoreConfig | None = None,
) -> SystemUnderTest:
    """Create a fresh simulator+cluster+store and Put ``objects`` into it.

    ``kind`` is ``"fusion"`` or ``"baseline"``.
    """
    sim = Simulator()
    cluster = Cluster(sim, cluster_config or ClusterConfig())
    if _OBS_CAPTURE is not None:
        # The ``sut`` ordinal keeps series distinct when one experiment
        # builds several systems of the same kind (e.g. a config sweep).
        sut = len(_OBS_CAPTURE["systems"]) + 1
        sim.tracer = Tracer(sim)
        cluster.metrics.registry = MetricsRegistry(
            const_labels={"system": kind, "sut": str(sut)},
            exemplars_enabled=_OBS_CAPTURE.get("exemplars", False),
        )
        interval = _OBS_CAPTURE.get("scrape_interval", 0.0)
        if interval:
            scraper = Scraper(cluster, interval)
            scraper.install()
            cluster.scraper = scraper
            if _OBS_CAPTURE.get("slo"):
                cluster.slo = SLOEngine(
                    scraper,
                    default_objectives(store_config or StoreConfig()),
                    registry=cluster.metrics.registry,
                    tracer=sim.tracer,
                )
    if kind == "fusion":
        store: FusionStore | BaselineStore = FusionStore(cluster, store_config)
    elif kind == "baseline":
        store = BaselineStore(cluster, store_config)
    else:
        raise ValueError(f"unknown system kind {kind!r}")
    for name, data in objects.items():
        store.put(name, data)
    system = SystemUnderTest(name=kind, sim=sim, cluster=cluster, store=store)
    if _OBS_CAPTURE is not None:
        _OBS_CAPTURE["systems"].append(system)
    return system


def build_pair(
    objects: dict[str, bytes],
    cluster_config: ClusterConfig | None = None,
    store_config: StoreConfig | None = None,
) -> tuple[SystemUnderTest, SystemUnderTest]:
    """Fusion and baseline systems with identical configs and datasets."""
    fusion = build_system("fusion", objects, cluster_config, store_config)
    baseline = build_system("baseline", objects, cluster_config, store_config)
    return fusion, baseline


def run_workload(
    system: SystemUnderTest,
    sqls: list[str],
    num_clients: int = 10,
    num_queries: int = 100,
) -> WorkloadStats:
    """Closed-loop workload: ``num_clients`` concurrent clients issue
    ``num_queries`` queries total, round-robin over ``sqls``."""
    if not sqls:
        raise ValueError("no queries to run")
    if num_clients < 1 or num_queries < 1:
        raise ValueError("need at least one client and one query")

    sim = system.sim
    store = system.store
    metrics_out: list[QueryMetrics] = []
    results_out: list[QueryResult] = []

    start = sim.now
    net_before = system.cluster.network.total_bytes
    cpu_before = [node.cpu.busy_time for node in system.cluster.nodes]

    per_client = [num_queries // num_clients] * num_clients
    for i in range(num_queries % num_clients):
        per_client[i] += 1

    def client(cid: int, count: int):
        for qi in range(count):
            sql = sqls[(cid + qi * num_clients) % len(sqls)]
            qm = QueryMetrics()
            result = yield from store.query_process(sql, qm)
            metrics_out.append(qm)
            results_out.append(result)

    for cid, count in enumerate(per_client):
        if count:
            sim.process(client(cid, count))
    sim.run()

    elapsed = sim.now - start
    # Account CPU utilisation over the workload window.
    for node in system.cluster.nodes:
        node.cpu._account()
    busy = sum(
        node.cpu.busy_time - before
        for node, before in zip(system.cluster.nodes, cpu_before)
    )
    cores = sum(node.cpu.capacity for node in system.cluster.nodes)
    cpu_util = busy / (elapsed * cores) if elapsed > 0 else 0.0

    return WorkloadStats(
        system=system.name,
        metrics=metrics_out,
        results=results_out,
        network_bytes=system.cluster.network.total_bytes - net_before,
        wall_seconds=elapsed,
        cpu_utilization=cpu_util,
        cpu_busy_seconds=busy,
    )


def run_open_loop(
    system: SystemUnderTest,
    sqls: list[str],
    rate_qps: float,
    duration_s: float,
) -> WorkloadStats:
    """Open-loop workload at a fixed arrival rate (the Fig 14d load)."""
    if rate_qps <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    sim = system.sim
    store = system.store
    metrics_out: list[QueryMetrics] = []
    results_out: list[QueryResult] = []
    start = sim.now
    net_before = system.cluster.network.total_bytes
    cpu_before = [node.cpu.busy_time for node in system.cluster.nodes]

    def one_query(sql: str):
        qm = QueryMetrics()
        result = yield from store.query_process(sql, qm)
        metrics_out.append(qm)
        results_out.append(result)

    def arrival_generator():
        interval = 1.0 / rate_qps
        count = int(rate_qps * duration_s)
        for i in range(count):
            sim.process(one_query(sqls[i % len(sqls)]))
            yield sim.timeout(interval)

    sim.process(arrival_generator())
    sim.run()

    elapsed = sim.now - start
    for node in system.cluster.nodes:
        node.cpu._account()
    busy = sum(
        node.cpu.busy_time - before
        for node, before in zip(system.cluster.nodes, cpu_before)
    )
    cores = sum(node.cpu.capacity for node in system.cluster.nodes)
    cpu_util = busy / (elapsed * cores) if elapsed > 0 else 0.0

    return WorkloadStats(
        system=system.name,
        metrics=metrics_out,
        results=results_out,
        network_bytes=system.cluster.network.total_bytes - net_before,
        wall_seconds=elapsed,
        cpu_utilization=cpu_util,
        cpu_busy_seconds=busy,
    )


@dataclass
class Comparison:
    """Fusion-vs-baseline statistics for one workload."""

    label: str
    fusion: WorkloadStats
    baseline: WorkloadStats
    extra: dict = field(default_factory=dict)

    @property
    def p50_reduction(self) -> float:
        return reduction_pct(self.baseline.p50(), self.fusion.p50())

    @property
    def p99_reduction(self) -> float:
        return reduction_pct(self.baseline.p99(), self.fusion.p99())

    @property
    def traffic_ratio(self) -> float:
        """Baseline network bytes / Fusion network bytes (>1: Fusion wins)."""
        if self.fusion.network_bytes == 0:
            return float("inf")
        return self.baseline.network_bytes / self.fusion.network_bytes
