"""CLI for the experiment harness.

Usage::

    python -m repro.bench list
    python -m repro.bench fig13ab [--json DIR]
    python -m repro.bench all [--json DIR]

``--json DIR`` additionally writes each result as ``DIR/<name>.json``.
"""

from __future__ import annotations

import os
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS


def main(argv: list[str]) -> int:
    json_dir = None
    if "--json" in argv:
        at = argv.index("--json")
        if at + 1 >= len(argv):
            print("--json needs a directory", file=sys.stderr)
            return 1
        json_dir = argv[at + 1]
        argv = argv[:at] + argv[at + 2 :]
        os.makedirs(json_dir, exist_ok=True)

    if len(argv) < 1 or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("experiments:", ", ".join(ALL_EXPERIMENTS))
        return 0
    target = argv[0]
    if target == "list":
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:24s} {doc}")
        return 0
    names = list(ALL_EXPERIMENTS) if target == "all" else [target]
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
            return 1
        start = time.perf_counter()
        result = ALL_EXPERIMENTS[name]()
        result.show()
        if json_dir is not None:
            result.save_json(os.path.join(json_dir, f"{name}.json"))
        print(f"({name} took {time.perf_counter() - start:.1f}s)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
