"""CLI for the experiment harness.

Usage::

    python -m repro.bench list
    python -m repro.bench fig13ab [--json DIR]
    python -m repro.bench all [--json DIR]

``--json DIR`` additionally writes each result as ``DIR/<name>.json``.
``--trace-out PATH`` captures a merged Chrome ``trace_event`` JSON of
every system built during the run (open it at https://ui.perfetto.dev).
``--metrics-out PATH`` writes a structured METRICS.json dump plus a
Prometheus text export next to it (same path, ``.prom`` suffix).
``--timeseries-out PATH`` installs the continuous-telemetry scraper on
every system and writes the per-system TIMESERIES dump; the default
0.25 s scrape interval is overridable with ``--scrape-interval S``.
``--alerts-out PATH`` additionally runs the default SLO objectives and
writes the per-system alert export.  ``--exemplars`` turns on histogram
exemplars (tail latency observations carry trace ids).
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS


def _take_flag(argv: list[str], flag: str) -> tuple[list[str], str | None]:
    """Remove ``flag VALUE`` from argv; returns (argv, value-or-None)."""
    if flag not in argv:
        return argv, None
    at = argv.index(flag)
    if at + 1 >= len(argv):
        raise SystemExit(f"{flag} needs a path argument")
    value = argv[at + 1]
    return argv[:at] + argv[at + 2 :], value


def main(argv: list[str]) -> int:
    json_dir = None
    if "--json" in argv:
        at = argv.index("--json")
        if at + 1 >= len(argv):
            print("--json needs a directory", file=sys.stderr)
            return 1
        json_dir = argv[at + 1]
        argv = argv[:at] + argv[at + 2 :]
        os.makedirs(json_dir, exist_ok=True)
    argv, trace_out = _take_flag(argv, "--trace-out")
    argv, metrics_out = _take_flag(argv, "--metrics-out")
    argv, timeseries_out = _take_flag(argv, "--timeseries-out")
    argv, alerts_out = _take_flag(argv, "--alerts-out")
    argv, scrape_interval = _take_flag(argv, "--scrape-interval")
    exemplars = "--exemplars" in argv
    if exemplars:
        argv = [a for a in argv if a != "--exemplars"]
    capture = (
        trace_out is not None
        or metrics_out is not None
        or timeseries_out is not None
        or alerts_out is not None
        or exemplars
    )
    if capture:
        from repro.bench.harness import enable_obs_capture

        interval = 0.0
        if timeseries_out is not None or alerts_out is not None:
            interval = float(scrape_interval) if scrape_interval is not None else 0.25
        enable_obs_capture(
            scrape_interval=interval,
            slo=alerts_out is not None,
            exemplars=exemplars,
        )

    if len(argv) < 1 or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("experiments:", ", ".join(ALL_EXPERIMENTS))
        return 0
    target = argv[0]
    if target == "list":
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:24s} {doc}")
        return 0
    names = list(ALL_EXPERIMENTS) if target == "all" else [target]
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
            return 1
        start = time.perf_counter()
        result = ALL_EXPERIMENTS[name]()
        result.show()
        if json_dir is not None:
            result.save_json(os.path.join(json_dir, f"{name}.json"))
        print(f"({name} took {time.perf_counter() - start:.1f}s)\n")

    if capture:
        from repro.bench.harness import collect_obs, collect_telemetry

        trace, prom_text, metrics = collect_obs()
        if trace_out is not None:
            with open(trace_out, "w") as fh:
                json.dump(trace, fh)
            print(f"wrote Chrome trace: {trace_out} "
                  f"({len(trace['traceEvents'])} events)")
        if metrics_out is not None:
            with open(metrics_out, "w") as fh:
                json.dump(metrics, fh, indent=2, sort_keys=True)
            prom_path = os.path.splitext(metrics_out)[0] + ".prom"
            with open(prom_path, "w") as fh:
                fh.write(prom_text)
            print(f"wrote metrics: {metrics_out} and {prom_path}")
        if timeseries_out is not None or alerts_out is not None:
            timeseries, alerts = collect_telemetry()
            if timeseries_out is not None:
                with open(timeseries_out, "w") as fh:
                    json.dump(timeseries, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                samples = sum(ts.get("samples", 0) for ts in timeseries.values())
                print(f"wrote timeseries: {timeseries_out} "
                      f"({len(timeseries)} system(s), {samples} samples)")
            if alerts_out is not None:
                with open(alerts_out, "w") as fh:
                    json.dump(alerts, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                fired = sum(len(a.get("alerts", [])) for a in alerts.values())
                print(f"wrote alerts: {alerts_out} "
                      f"({len(alerts)} system(s), {fired} alert(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
