"""CLI for the experiment harness.

Usage::

    python -m repro.bench list
    python -m repro.bench fig13ab [--json DIR]
    python -m repro.bench all [--json DIR]

``--json DIR`` additionally writes each result as ``DIR/<name>.json``.
``--trace-out PATH`` captures a merged Chrome ``trace_event`` JSON of
every system built during the run (open it at https://ui.perfetto.dev).
``--metrics-out PATH`` writes a structured METRICS.json dump plus a
Prometheus text export next to it (same path, ``.prom`` suffix).
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS


def _take_flag(argv: list[str], flag: str) -> tuple[list[str], str | None]:
    """Remove ``flag VALUE`` from argv; returns (argv, value-or-None)."""
    if flag not in argv:
        return argv, None
    at = argv.index(flag)
    if at + 1 >= len(argv):
        raise SystemExit(f"{flag} needs a path argument")
    value = argv[at + 1]
    return argv[:at] + argv[at + 2 :], value


def main(argv: list[str]) -> int:
    json_dir = None
    if "--json" in argv:
        at = argv.index("--json")
        if at + 1 >= len(argv):
            print("--json needs a directory", file=sys.stderr)
            return 1
        json_dir = argv[at + 1]
        argv = argv[:at] + argv[at + 2 :]
        os.makedirs(json_dir, exist_ok=True)
    argv, trace_out = _take_flag(argv, "--trace-out")
    argv, metrics_out = _take_flag(argv, "--metrics-out")
    if trace_out is not None or metrics_out is not None:
        from repro.bench.harness import enable_obs_capture

        enable_obs_capture()

    if len(argv) < 1 or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("experiments:", ", ".join(ALL_EXPERIMENTS))
        return 0
    target = argv[0]
    if target == "list":
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:24s} {doc}")
        return 0
    names = list(ALL_EXPERIMENTS) if target == "all" else [target]
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
            return 1
        start = time.perf_counter()
        result = ALL_EXPERIMENTS[name]()
        result.show()
        if json_dir is not None:
            result.save_json(os.path.join(json_dir, f"{name}.json"))
        print(f"({name} took {time.perf_counter() - start:.1f}s)\n")

    if trace_out is not None or metrics_out is not None:
        from repro.bench.harness import collect_obs

        trace, prom_text, metrics = collect_obs()
        if trace_out is not None:
            with open(trace_out, "w") as fh:
                json.dump(trace, fh)
            print(f"wrote Chrome trace: {trace_out} "
                  f"({len(trace['traceEvents'])} events)")
        if metrics_out is not None:
            with open(metrics_out, "w") as fh:
                json.dump(metrics, fh, indent=2, sort_keys=True)
            prom_path = os.path.splitext(metrics_out)[0] + ".prom"
            with open(prom_path, "w") as fh:
                fh.write(prom_text)
            print(f"wrote metrics: {metrics_out} and {prom_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
