"""One function per paper table/figure.

Every experiment returns an :class:`ExperimentResult` whose rows mirror
the series the paper plots.  Absolute latencies come from the simulated
cluster, so the *shape* (who wins, by what factor, where crossovers fall)
is the reproduction target, not the paper's absolute numbers — see
EXPERIMENTS.md for the side-by-side.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field

import numpy as np

from repro.bench.harness import (
    PAPER_DATASET_BYTES,
    Comparison,
    build_pair,
    build_system,
    run_open_loop,
    run_workload,
)
from repro.bench.report import format_table
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.faults import FaultEvent, FaultInjector
from repro.cluster.metrics import percentile
from repro.cluster.network import NetworkConfig
from repro.cluster.simcore import Simulator
from repro.core.baseline_store import BaselineStore
from repro.core.config import StoreConfig
from repro.core.repair import RepairManager
from repro.core.store import FusionStore
from repro.core.wal import (
    DELETE_CRASH_POINTS,
    PUT_CRASH_POINTS,
    CoordinatorCrash,
)
from repro.core.cost_model import PushdownMode
from repro.core.fac import construct_stripes
from repro.core.fixed import build_fixed_layout, fraction_of_chunks_split
from repro.core.oracle import OracleError, construct_oracle_layout
from repro.core.padding import construct_padding_layout
from repro.ec.reed_solomon import RS_9_6, RS_14_10
from repro.format.reader import PaxFile
from repro.sql.local import execute_local
from repro.workloads import (
    LINEITEM_CHUNK_MB,
    MB,
    TAXI_CHUNK_MB,
    column_name,
    items_from_sizes,
    lineitem_file,
    microbenchmark_query,
    paper_scale_chunk_ranges,
    real_world_queries,
    recipe_file,
    taxi_file,
    ukpp_file,
    zipf_chunk_sizes,
)


@dataclass
class ExperimentResult:
    """Printable rows for one reproduced table/figure."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: str = ""
    raw: dict = field(default_factory=dict)

    def render(self) -> str:
        text = format_table(f"[{self.experiment}] {self.title}", self.headers, self.rows)
        if self.notes:
            text += f"\nnote: {self.notes}"
        return text

    def show(self) -> None:
        print(self.render())
        print()

    def to_dict(self) -> dict:
        """JSON-safe form (headers/rows/notes; raw objects are dropped)."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
        }

    def save_json(self, path: str) -> None:
        """Write the result rows as JSON (for downstream plotting)."""
        import json

        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_dict(), f, indent=2, default=str)


# ---------------------------------------------------------------------------
# Shared dataset plumbing
# ---------------------------------------------------------------------------

DATASET_GENERATORS = {
    "lineitem": lineitem_file,
    "taxi": taxi_file,
    "recipe": recipe_file,
    "ukpp": ukpp_file,
}


@functools.lru_cache(maxsize=None)
def dataset(name: str):
    """Generate (and cache) one dataset: ``(file_bytes, table)``."""
    return DATASET_GENERATORS[name]()


def dataset_scale(name: str) -> float:
    """Simulation scale mapping the generated file to its paper size."""
    data, _table = dataset(name)
    return PAPER_DATASET_BYTES[name] / len(data)


def store_config(name: str, **overrides) -> StoreConfig:
    """Paper-default store config with the dataset's scale factor."""
    return StoreConfig(size_scale=dataset_scale(name), **overrides)


@functools.lru_cache(maxsize=None)
def _lineitem_pair(mode: str = "adaptive"):
    data, _table = dataset("lineitem")
    cfg = store_config("lineitem", pushdown_mode=PushdownMode(mode))
    return build_pair({"lineitem": data}, store_config=cfg)


@functools.lru_cache(maxsize=None)
def _realworld_pair():
    ldata, _lt = dataset("lineitem")
    tdata, _tt = dataset("taxi")
    # One shared scale: the paper stores both datasets in the same cluster.
    cfg = StoreConfig(size_scale=dataset_scale("lineitem"))
    return build_pair({"lineitem": ldata, "taxi": tdata}, store_config=cfg)


def _micro_sql(column_id: int, selectivity: float = 0.01) -> str:
    _data, table = dataset("lineitem")
    return microbenchmark_query(table, column_name(column_id), selectivity)


# ---------------------------------------------------------------------------
# Tables 3 and 4
# ---------------------------------------------------------------------------


def table3_datasets() -> ExperimentResult:
    """Table 3: dataset descriptions."""
    rows = []
    for name in DATASET_GENERATORS:
        data, table = dataset(name)
        meta = PaxFile(data).metadata
        rows.append(
            [
                name,
                len(meta.schema),
                len(meta.all_chunks()),
                round(len(data) / MB, 2),
                round(PAPER_DATASET_BYTES[name] / 1e9, 2),
            ]
        )
    return ExperimentResult(
        experiment="table3",
        title="Datasets (generated, scaled to paper sizes in simulation)",
        headers=["dataset", "columns", "chunks", "generated MB", "simulated GB"],
        rows=rows,
        notes="paper: lineitem 16/160/10GB, taxi 20/320/8.4GB, "
        "recipeNLG 7/84/0.98GB, uk pp 16/240/1.5GB",
    )


def table4_queries() -> ExperimentResult:
    """Table 4: real-world query descriptors with measured selectivity."""
    _l, ltable = dataset("lineitem")
    _t, ttable = dataset("taxi")
    rows = []
    for q in real_world_queries(ltable, ttable):
        table = ltable if q.dataset == "tpch" else ttable
        sel = execute_local(q.sql, table).selectivity
        rows.append(
            [
                q.name,
                q.dataset,
                q.num_filters,
                q.num_projections,
                f"{q.target_selectivity * 100:.1f}%",
                f"{sel * 100:.1f}%",
            ]
        )
    return ExperimentResult(
        experiment="table4",
        title="Real-world SQL queries",
        headers=["query", "dataset", "filters", "projections", "paper sel", "measured sel"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figure 4: motivation
# ---------------------------------------------------------------------------


def fig4a_chunk_splits(
    block_sizes_mb: tuple[float, ...] = (0.1, 1.0, 10.0, 100.0),
) -> ExperimentResult:
    """Fig 4a: % of column chunks split vs erasure-code block size."""
    profiles = {
        "tpc-h lineitem": paper_scale_chunk_ranges(LINEITEM_CHUNK_MB, num_row_groups=10),
        "taxi": paper_scale_chunk_ranges(TAXI_CHUNK_MB, num_row_groups=16),
    }
    rows = []
    raw: dict = {}
    for label, ranges in profiles.items():
        total = ranges[-1][0] + ranges[-1][1]
        series = []
        for mb in block_sizes_mb:
            layout = build_fixed_layout(RS_9_6, total, int(mb * MB))
            pct = fraction_of_chunks_split(layout, ranges) * 100
            series.append(pct)
            rows.append([label, f"{mb}MB", round(pct, 1)])
        raw[label] = dict(zip(block_sizes_mb, series))
    return ExperimentResult(
        experiment="fig4a",
        title="% of column chunks split under fixed-block RS(9,6)",
        headers=["dataset", "block size", "chunks split (%)"],
        rows=rows,
        notes="paper reports up to 40% (lineitem) / 24% (taxi) at 100MB blocks",
        raw=raw,
    )


def fig4b_baseline_breakdown(num_queries: int = 30) -> ExperimentResult:
    """Fig 4b: latency breakdown of the baseline on the microbenchmark."""
    data, _table = dataset("lineitem")
    baseline = build_system("baseline", {"lineitem": data}, store_config=store_config("lineitem"))
    stats = run_workload(baseline, [_micro_sql(5)], num_clients=10, num_queries=num_queries)
    frac = stats.mean_breakdown()
    rows = [[cat, round(share * 100, 1)] for cat, share in frac.items()]
    return ExperimentResult(
        experiment="fig4b",
        title="Baseline latency breakdown, 1%-selectivity query on lineitem",
        headers=["component", "share of accounted time (%)"],
        rows=rows,
        notes="paper: ~50% of time in network reassembly, small disk share",
        raw={"fractions": frac, "p50": stats.p50()},
    )


def fig4c_chunk_cdf(points: tuple[int, ...] = (10, 25, 50, 75, 90, 99)) -> ExperimentResult:
    """Fig 4c: CDF of normalised column chunk sizes per dataset."""
    rows = []
    raw: dict = {}
    for name in DATASET_GENERATORS:
        data, _table = dataset(name)
        sizes = np.array([c.size for c in PaxFile(data).metadata.all_chunks()], dtype=float)
        norm = sizes / sizes.max() * 100  # % of the largest chunk
        percentiles = {p: float(np.percentile(norm, p)) for p in points}
        raw[name] = percentiles
        rows.append([name] + [round(percentiles[p], 1) for p in points])
    return ExperimentResult(
        experiment="fig4c",
        title="Normalised chunk size (% of max) at each percentile",
        headers=["dataset"] + [f"p{p}" for p in points],
        rows=rows,
        notes="lineitem is bimodal (tiny + huge chunks); taxi is more uniform",
        raw=raw,
    )


def fig4d_padding_overhead() -> ExperimentResult:
    """Fig 4d: storage overhead of the Padding strategy vs optimal."""
    rows = []
    raw: dict = {}
    for name in DATASET_GENERATORS:
        data, _table = dataset(name)
        meta = PaxFile(data).metadata
        items = [
            _layout_item(c) for c in meta.all_chunks()
        ]
        scale = dataset_scale(name)
        block = max(1, int(round(100 * MB / scale)))
        for params in (RS_9_6, RS_14_10):
            layout = construct_padding_layout(params, items, block)
            pct = layout.overhead_vs_optimal * 100
            rows.append([name, str(params), round(pct, 1)])
            raw[(name, str(params))] = pct
    return ExperimentResult(
        experiment="fig4d",
        title="Padding strategy storage overhead w.r.t. optimal (%)",
        headers=["dataset", "code", "overhead (%)"],
        rows=rows,
        notes="paper reports up to >100% for some datasets",
        raw=raw,
    )


def _layout_item(chunk_meta):
    from repro.core.layout import ChunkItem

    return ChunkItem(key=chunk_meta.key, size=chunk_meta.size)


# ---------------------------------------------------------------------------
# Figure 6: compression ratios
# ---------------------------------------------------------------------------


def fig6_compression() -> ExperimentResult:
    """Fig 6: average compression ratio per lineitem column."""
    data, _table = dataset("lineitem")
    meta = PaxFile(data).metadata
    rows = []
    ratios = []
    for cid in range(16):
        chunks = meta.chunks_for_column(column_name(cid))
        ratio = sum(c.compressibility for c in chunks) / len(chunks)
        ratios.append(ratio)
        rows.append([cid, column_name(cid), round(ratio, 1)])
    med = float(np.median(ratios))
    return ExperimentResult(
        experiment="fig6",
        title="Average compression ratio per lineitem column",
        headers=["column id", "column", "compression ratio"],
        rows=rows,
        notes=f"median {med:.1f}, max {max(ratios):.1f} (paper: 9.3 / 63.5)",
        raw={"ratios": ratios},
    )


# ---------------------------------------------------------------------------
# Figure 10: oracle runtime and pushdown trade-off
# ---------------------------------------------------------------------------


def fig10a_oracle_runtime(
    chunk_counts: tuple[int, ...] = (6, 9, 12, 15, 18),
    time_cap_s: float = 30.0,
) -> ExperimentResult:
    """Fig 10a: ILP solve time explodes with chunk count."""
    rows = []
    raw: dict = {}
    for n in chunk_counts:
        items = items_from_sizes(zipf_chunk_sizes(n, 0.0, seed=n))
        start = time.perf_counter()
        try:
            construct_oracle_layout(RS_9_6, items, time_limit_s=time_cap_s)
            elapsed = time.perf_counter() - start
            capped = elapsed >= time_cap_s
        except OracleError:
            elapsed = time.perf_counter() - start
            capped = True
        raw[n] = elapsed
        rows.append([n, round(elapsed, 3), capped])
        if capped:
            break
    return ExperimentResult(
        experiment="fig10a",
        title="Oracle (ILP) runtime vs number of chunks",
        headers=["chunks", "solve time (s)", "hit time cap"],
        rows=rows,
        notes="paper: >3 hours at 35 chunks with Gurobi; growth is the point",
        raw=raw,
    )


def fig10b_tradeoff(
    column_ids: tuple[int, ...] = (5, 0, 4, 7),
    selectivities: tuple[float, ...] = (0.01, 0.1, 0.25, 0.5, 0.75, 1.0),
    num_queries: int = 20,
) -> ExperimentResult:
    """Fig 10b: p50 improvement of always-pushdown Fusion vs baseline.

    Cells go negative where selectivity x compressibility > 1 — the region
    the adaptive cost model avoids.
    """
    fusion, baseline = _lineitem_pair("always")
    rows = []
    raw: dict = {}
    for cid in column_ids:
        row = [f"c{cid} ({column_name(cid)})"]
        for sel in selectivities:
            sql = _micro_sql(cid, sel)
            f = run_workload(fusion, [sql], num_clients=10, num_queries=num_queries)
            b = run_workload(baseline, [sql], num_clients=10, num_queries=num_queries)
            comp = Comparison(label=f"c{cid}@{sel}", fusion=f, baseline=b)
            row.append(round(comp.p50_reduction, 1))
            raw[(cid, sel)] = comp.p50_reduction
        rows.append(row)
    return ExperimentResult(
        experiment="fig10b",
        title="p50 latency improvement (%) with pushdown ALWAYS on",
        headers=["column"] + [f"sel={s:g}" for s in selectivities],
        rows=rows,
        notes="negative cells = pushdown hurts (high selectivity x compressibility)",
        raw=raw,
    )


# ---------------------------------------------------------------------------
# Figure 12: chunk spread in the baseline
# ---------------------------------------------------------------------------


def fig12_nodes_per_chunk() -> ExperimentResult:
    """Fig 12: average number of nodes a chunk spans in the baseline."""
    data, _table = dataset("lineitem")
    baseline = build_system("baseline", {"lineitem": data}, store_config=store_config("lineitem"))
    obj = baseline.store.objects["lineitem"]
    scale = dataset_scale("lineitem")
    rows = []
    raw: dict = {}
    for cid in range(16):
        name = column_name(cid)
        node_counts = []
        sizes = []
        for chunk in obj.metadata.chunks_for_column(name):
            fragments = obj.layout.locate(chunk.offset, chunk.size)
            nodes = {obj.data_block_nodes[f.block_index] for f in fragments}
            node_counts.append(len(nodes))
            sizes.append(chunk.size * scale / MB)
        avg_nodes = sum(node_counts) / len(node_counts)
        avg_mb = sum(sizes) / len(sizes)
        raw[cid] = (avg_nodes, avg_mb)
        rows.append([cid, name, round(avg_nodes, 2), round(avg_mb, 1)])
    return ExperimentResult(
        experiment="fig12",
        title="Baseline: avg nodes per column chunk (and avg chunk size)",
        headers=["column id", "column", "avg nodes", "avg chunk MB (simulated)"],
        rows=rows,
        notes="large chunks span many nodes; Fusion always stores chunks on one node",
        raw=raw,
    )


# ---------------------------------------------------------------------------
# Figure 13: column sweep and breakdowns
# ---------------------------------------------------------------------------


def fig13ab_column_sweep(num_queries: int = 60) -> ExperimentResult:
    """Fig 13a/b: p50 and p99 latency reduction per lineitem column."""
    fusion, baseline = _lineitem_pair()
    rows = []
    raw: dict = {}
    for cid in range(16):
        sql = _micro_sql(cid)
        f = run_workload(fusion, [sql], num_clients=10, num_queries=num_queries)
        b = run_workload(baseline, [sql], num_clients=10, num_queries=num_queries)
        comp = Comparison(label=f"c{cid}", fusion=f, baseline=b)
        raw[cid] = comp
        rows.append(
            [
                cid,
                column_name(cid),
                round(comp.p50_reduction, 1),
                round(comp.p99_reduction, 1),
            ]
        )
    return ExperimentResult(
        experiment="fig13ab",
        title="Latency reduction per column, 1%-selectivity microbenchmark",
        headers=["column id", "column", "p50 reduction (%)", "p99 reduction (%)"],
        rows=rows,
        notes="paper: up to 65%/81% on big split-prone columns (0,1,2,5,15); "
        "modest on small compressed columns (3,4,9,10,11)",
        raw=raw,
    )


def fig13cd_breakdown(
    column_ids: tuple[int, ...] = (5, 9), num_queries: int = 30
) -> ExperimentResult:
    """Fig 13c/d: latency breakdown of Fusion vs baseline per column."""
    fusion, baseline = _lineitem_pair()
    rows = []
    raw: dict = {}
    for cid in column_ids:
        sql = _micro_sql(cid)
        for system in (baseline, fusion):
            stats = run_workload(system, [sql], num_clients=10, num_queries=num_queries)
            frac = stats.mean_breakdown()
            raw[(cid, system.name)] = frac
            rows.append(
                [
                    f"c{cid}",
                    system.name,
                    round(frac["disk"] * 100, 1),
                    round(frac["processing"] * 100, 1),
                    round(frac["network"] * 100, 1),
                ]
            )
    return ExperimentResult(
        experiment="fig13cd",
        title="Latency breakdown (% of accounted time)",
        headers=["column", "system", "disk", "processing", "network"],
        rows=rows,
        notes="paper: baseline spends ~57% on network for column 5; "
        "both systems <3% network for column 9",
        raw=raw,
    )


# ---------------------------------------------------------------------------
# Figure 14: selectivity, bandwidth, CPU
# ---------------------------------------------------------------------------


def fig14ab_selectivity_sweep(
    column_ids: tuple[int, ...] = (5, 9),
    selectivities: tuple[float, ...] = (0.001, 0.01, 0.05, 0.1, 0.2, 0.5, 0.75, 1.0),
    num_queries: int = 30,
) -> ExperimentResult:
    """Fig 14a/b: latency reduction vs query selectivity."""
    fusion, baseline = _lineitem_pair()
    rows = []
    raw: dict = {}
    for cid in column_ids:
        for sel in selectivities:
            sql = _micro_sql(cid, sel)
            f = run_workload(fusion, [sql], num_clients=10, num_queries=num_queries)
            b = run_workload(baseline, [sql], num_clients=10, num_queries=num_queries)
            comp = Comparison(label=f"c{cid}@{sel}", fusion=f, baseline=b)
            raw[(cid, sel)] = comp
            rows.append(
                [
                    f"c{cid}",
                    f"{sel * 100:g}%",
                    round(comp.p50_reduction, 1),
                    round(comp.p99_reduction, 1),
                ]
            )
    return ExperimentResult(
        experiment="fig14ab",
        title="Latency reduction vs query selectivity",
        headers=["column", "selectivity", "p50 reduction (%)", "p99 reduction (%)"],
        rows=rows,
        notes="gains shrink as selectivity grows; at >=75% Fusion falls back to "
        "fetching compressed chunks but keeps filter pushdown",
        raw=raw,
    )


def fig14c_bandwidth_sweep(
    gbps_values: tuple[float, ...] = (10, 25, 50, 100),
    column_id: int = 5,
    num_queries: int = 30,
) -> ExperimentResult:
    """Fig 14c: latency reduction vs network bandwidth."""
    data, _table = dataset("lineitem")
    rows = []
    raw: dict = {}
    sql = _micro_sql(column_id)
    for gbps in gbps_values:
        cluster_cfg = ClusterConfig(network=NetworkConfig(bandwidth_bps=gbps * 1e9 / 8))
        cfg = store_config("lineitem")
        fusion, baseline = build_pair({"lineitem": data}, cluster_cfg, cfg)
        f = run_workload(fusion, [sql], num_clients=10, num_queries=num_queries)
        b = run_workload(baseline, [sql], num_clients=10, num_queries=num_queries)
        comp = Comparison(label=f"{gbps}Gbps", fusion=f, baseline=b)
        raw[gbps] = comp
        rows.append(
            [f"{gbps:g} Gbps", round(comp.p50_reduction, 1), round(comp.p99_reduction, 1)]
        )
    return ExperimentResult(
        experiment="fig14c",
        title=f"Latency reduction vs network bandwidth (column {column_id})",
        headers=["bandwidth", "p50 reduction (%)", "p99 reduction (%)"],
        rows=rows,
        notes="slower networks amplify Fusion's advantage",
        raw=raw,
    )


def fig14d_cpu_utilization(
    column_ids: tuple[int, ...] = (0, 5, 9, 15),
    num_queries: int = 40,
) -> ExperimentResult:
    """Fig 14d: CPU cost at a fixed delivered load.

    Reported as busy CPU core-seconds per query — the load-normalised
    form of the paper's utilisation-at-10qps plot (per-query cost times
    query rate gives utilisation, and per-query cost is what the two
    systems actually differ in).
    """
    data, _table = dataset("lineitem")
    rows = []
    raw: dict = {}
    for cid in column_ids:
        sql = _micro_sql(cid)
        cfg = store_config("lineitem")
        fusion, baseline = build_pair({"lineitem": data}, store_config=cfg)
        f = run_workload(fusion, [sql], num_clients=10, num_queries=num_queries)
        b = run_workload(baseline, [sql], num_clients=10, num_queries=num_queries)
        raw[cid] = (f.cpu_seconds_per_query, b.cpu_seconds_per_query)
        rows.append(
            [
                f"c{cid}",
                round(f.cpu_seconds_per_query, 3),
                round(b.cpu_seconds_per_query, 3),
            ]
        )
    return ExperimentResult(
        experiment="fig14d",
        title="CPU core-seconds per query (fixed delivered load)",
        headers=["column", "fusion", "baseline"],
        rows=rows,
        notes="same computation, but Fusion moves less data so burns less CPU "
        "on network processing",
        raw=raw,
    )


# ---------------------------------------------------------------------------
# Figure 15: real-world queries
# ---------------------------------------------------------------------------


def fig15a_realworld(num_queries: int = 40) -> ExperimentResult:
    """Fig 15a: latency reduction on Q1-Q4."""
    fusion, baseline = _realworld_pair()
    _l, ltable = dataset("lineitem")
    _t, ttable = dataset("taxi")
    rows = []
    raw: dict = {}
    for q in real_world_queries(ltable, ttable):
        f = run_workload(fusion, [q.sql], num_clients=10, num_queries=num_queries)
        b = run_workload(baseline, [q.sql], num_clients=10, num_queries=num_queries)
        comp = Comparison(label=q.name, fusion=f, baseline=b)
        raw[q.name] = comp
        rows.append([q.name, round(comp.p50_reduction, 1), round(comp.p99_reduction, 1)])
    return ExperimentResult(
        experiment="fig15a",
        title="Real-world queries: latency reduction (%)",
        headers=["query", "p50 reduction (%)", "p99 reduction (%)"],
        rows=rows,
        notes="paper: up to 48% median / 40% tail on TPC-H; up to 32%/48% on taxi",
        raw=raw,
    )


def fig15b_traffic(num_queries: int = 40) -> ExperimentResult:
    """Fig 15b: total network traffic, baseline / Fusion."""
    fusion, baseline = _realworld_pair()
    _l, ltable = dataset("lineitem")
    _t, ttable = dataset("taxi")
    rows = []
    raw: dict = {}
    for q in real_world_queries(ltable, ttable):
        f = run_workload(fusion, [q.sql], num_clients=10, num_queries=num_queries)
        b = run_workload(baseline, [q.sql], num_clients=10, num_queries=num_queries)
        comp = Comparison(label=q.name, fusion=f, baseline=b)
        raw[q.name] = comp
        rows.append(
            [
                q.name,
                round(f.network_bytes / 1e9, 2),
                round(b.network_bytes / 1e9, 2),
                round(comp.traffic_ratio, 1),
            ]
        )
    return ExperimentResult(
        experiment="fig15b",
        title="Network traffic per workload (simulated GB)",
        headers=["query", "fusion GB", "baseline GB", "baseline/fusion"],
        rows=rows,
        notes="paper: Fusion generates up to 8.9x lower traffic",
        raw=raw,
    )


# ---------------------------------------------------------------------------
# Figure 16: FAC overheads
# ---------------------------------------------------------------------------


def fig16a_fac_overhead(
    chunk_counts: tuple[int, ...] = (50, 100, 200, 500, 1000),
    skews: tuple[float, ...] = (0.0, 0.5, 0.99),
    runs: int = 20,
) -> ExperimentResult:
    """Fig 16a: FAC storage overhead vs chunk count, by size skew."""
    rows = []
    raw: dict = {}
    for skew in skews:
        for n in chunk_counts:
            overheads = []
            for r in range(runs):
                sizes = zipf_chunk_sizes(n, skew, seed=1000 * r + n)
                layout = construct_stripes(RS_9_6, items_from_sizes(sizes))
                overheads.append(layout.overhead_vs_optimal * 100)
            avg = sum(overheads) / len(overheads)
            raw[(skew, n)] = avg
            rows.append([f"zipf {skew:g}", n, round(avg, 2)])
    return ExperimentResult(
        experiment="fig16a",
        title=f"FAC storage overhead w.r.t. optimal (%), avg of {runs} runs",
        headers=["distribution", "chunks", "overhead (%)"],
        rows=rows,
        notes="paper: ~3% at 100 chunks, 0.8% at 500, ->0 beyond; skew barely matters",
        raw=raw,
    )


def fig16bc_strategy_compare(oracle_time_limit_s: float = 15.0) -> ExperimentResult:
    """Fig 16b/c: storage and runtime overhead of oracle vs padding vs FAC."""
    rows = []
    raw: dict = {}
    for name in DATASET_GENERATORS:
        data, _table = dataset(name)
        meta = PaxFile(data).metadata
        items = [_layout_item(c) for c in meta.all_chunks()]
        scale = dataset_scale(name)
        block = max(1, int(round(100 * MB / scale)))

        # Simulated put time for the runtime-overhead denominator.
        put_seconds = _simulated_put_seconds(name, data)

        fac = construct_stripes(RS_9_6, items)
        pad = construct_padding_layout(RS_9_6, items, block)
        strategies = [("fac", fac), ("padding", pad)]
        try:
            oracle = construct_oracle_layout(RS_9_6, items, time_limit_s=oracle_time_limit_s)
            strategies.insert(0, ("oracle", oracle))
        except OracleError:
            rows.append([name, "oracle", "n/a (timeout)", round(oracle_time_limit_s, 1), "n/a"])

        for label, layout in strategies:
            overhead_pct = layout.overhead_vs_optimal * 100
            runtime_pct = layout.build_seconds / put_seconds * 100
            raw[(name, label)] = (overhead_pct, layout.build_seconds, runtime_pct)
            rows.append(
                [
                    name,
                    label,
                    round(overhead_pct, 2),
                    round(layout.build_seconds, 4),
                    f"{runtime_pct:.4f}",
                ]
            )
    return ExperimentResult(
        experiment="fig16bc",
        title="Stripe-construction strategies: storage overhead and runtime",
        headers=["dataset", "strategy", "overhead vs optimal (%)", "runtime (s)", "runtime / put (%)"],
        rows=rows,
        notes="paper: FAC <= 1.24% overhead and <= 0.0027% runtime; padding up to "
        "83.8% overhead; oracle optimal but up to 3.91x the put latency",
        raw=raw,
    )


def _simulated_put_seconds(name: str, data: bytes) -> float:
    """Put latency of the object on an idle baseline cluster (the paper's
    runtime-overhead denominator: FAC runtime vs total put time)."""
    system = build_system("baseline", {}, store_config=store_config(name))
    report = system.store.put(name, data)
    return report.simulated_put_seconds


# ---------------------------------------------------------------------------
# Ablations and extensions (beyond the paper's figures)
# ---------------------------------------------------------------------------


def ablation_cost_model(num_queries: int = 30) -> ExperimentResult:
    """Adaptive vs always-push vs never-push on a favourable and an
    unfavourable column (design-choice ablation from DESIGN.md)."""
    data, _table = dataset("lineitem")
    rows = []
    raw: dict = {}
    for cid, sel in ((5, 0.01), (4, 0.75)):
        sql = _micro_sql(cid, sel)
        for mode in ("adaptive", "always", "never"):
            cfg = store_config("lineitem", pushdown_mode=PushdownMode(mode))
            system = build_system("fusion", {"lineitem": data}, store_config=cfg)
            stats = run_workload(system, [sql], num_clients=10, num_queries=num_queries)
            raw[(cid, sel, mode)] = stats.p50()
            rows.append([f"c{cid}@{sel:g}", mode, round(stats.p50() * 1000, 2)])
    return ExperimentResult(
        experiment="ablation-cost-model",
        title="Pushdown policy ablation (p50 latency, ms)",
        headers=["workload", "policy", "p50 (ms)"],
        rows=rows,
        notes="adaptive should track the better of always/never in both regimes",
        raw=raw,
    )


def ablation_contention(num_queries: int = 40) -> ExperimentResult:
    """1 vs 10 concurrent clients: queueing produces the p99 tail."""
    data, _table = dataset("lineitem")
    sql = _micro_sql(5)
    rows = []
    raw: dict = {}
    for clients in (1, 10):
        cfg = store_config("lineitem")
        fusion, baseline = build_pair({"lineitem": data}, store_config=cfg)
        f = run_workload(fusion, [sql], num_clients=clients, num_queries=num_queries)
        b = run_workload(baseline, [sql], num_clients=clients, num_queries=num_queries)
        raw[clients] = (f, b)
        rows.append(
            [
                clients,
                round(f.p50() * 1000, 2),
                round(f.p99() * 1000, 2),
                round(b.p50() * 1000, 2),
                round(b.p99() * 1000, 2),
            ]
        )
    return ExperimentResult(
        experiment="ablation-contention",
        title="Client concurrency vs latency (ms)",
        headers=["clients", "fusion p50", "fusion p99", "baseline p50", "baseline p99"],
        rows=rows,
        notes="tail inflation under 10 clients comes from FIFO resource queueing",
        raw=raw,
    )


def ablation_fac_policy(runs: int = 20) -> ExperimentResult:
    """Least-occupied vs first-fit bin choice in Algorithm 1."""
    from repro.core.fac import construct_stripes_first_fit

    rows = []
    raw: dict = {}
    for n in (100, 500):
        for skew in (0.0, 0.99):
            lo, ff = [], []
            for r in range(runs):
                sizes = zipf_chunk_sizes(n, skew, seed=77 * r + n)
                items = items_from_sizes(sizes)
                lo.append(construct_stripes(RS_9_6, items).overhead_vs_optimal * 100)
                ff.append(construct_stripes_first_fit(RS_9_6, items).overhead_vs_optimal * 100)
            raw[(n, skew)] = (sum(lo) / runs, sum(ff) / runs)
            rows.append(
                [n, f"zipf {skew:g}", round(sum(lo) / runs, 3), round(sum(ff) / runs, 3)]
            )
    return ExperimentResult(
        experiment="ablation-fac-policy",
        title="FAC bin-choice policy: storage overhead (%)",
        headers=["chunks", "distribution", "least-occupied", "first-fit"],
        rows=rows,
        raw=raw,
    )


def ext_aggregate_pushdown(num_queries: int = 30) -> ExperimentResult:
    """Extension bench: aggregate pushdown (the paper's future work)."""
    _t, ttable = dataset("taxi")
    tdata, _tt = dataset("taxi")
    sql = "SELECT count(date), avg(fare) FROM taxi WHERE date < '2015-12-31'"
    rows = []
    raw: dict = {}
    for label, enabled in (("coordinator aggregates", False), ("aggregate pushdown", True)):
        cfg = store_config("taxi", enable_aggregate_pushdown=enabled)
        system = build_system("fusion", {"taxi": tdata}, store_config=cfg)
        stats = run_workload(system, [sql], num_clients=10, num_queries=num_queries)
        raw[label] = stats
        rows.append(
            [
                label,
                round(stats.p50() * 1000, 2),
                round(stats.p99() * 1000, 2),
                round(stats.network_bytes / 1e9, 3),
            ]
        )
    return ExperimentResult(
        experiment="ext-aggregate-pushdown",
        title="Aggregate pushdown extension (taxi count/avg query)",
        headers=["mode", "p50 (ms)", "p99 (ms)", "network GB"],
        rows=rows,
        notes="implements the paper's stated future work behind a config flag",
        raw=raw,
    )


def ext_degraded_reads(num_queries: int = 30) -> ExperimentResult:
    """Extension bench: query latency healthy vs degraded vs recovered.

    Fails one storage node and keeps querying: chunks on the dead node are
    reconstructed on the fly from k surviving stripe blocks (expensive),
    until recovery rebuilds them elsewhere.
    """
    data, _table = dataset("lineitem")
    sql = _micro_sql(5)
    system = build_system("fusion", {"lineitem": data}, store_config=store_config("lineitem"))
    rows = []
    raw: dict = {}

    healthy = run_workload(system, [sql], num_clients=10, num_queries=num_queries)
    raw["healthy"] = healthy
    rows.append(["healthy", round(healthy.p50() * 1000, 1), round(healthy.p99() * 1000, 1)])

    # Fail a node that actually holds chunks of the queried column.
    obj = system.store.objects["lineitem"]
    col = column_name(5)
    victim = next(
        obj.location_map.lookup(meta.key).node_id
        for meta in obj.metadata.all_chunks()
        if meta.column == col
    )
    system.cluster.fail_node(victim)
    degraded = run_workload(system, [sql], num_clients=10, num_queries=num_queries)
    raw["degraded"] = degraded
    rows.append(
        ["degraded (1 node down)", round(degraded.p50() * 1000, 1), round(degraded.p99() * 1000, 1)]
    )

    system.store.recover_node(victim)
    recovered = run_workload(system, [sql], num_clients=10, num_queries=num_queries)
    raw["recovered"] = recovered
    rows.append(
        ["after recovery", round(recovered.p50() * 1000, 1), round(recovered.p99() * 1000, 1)]
    )
    return ExperimentResult(
        experiment="ext-degraded-reads",
        title="Degraded reads: latency under node failure (column 5, ms)",
        headers=["state", "p50 (ms)", "p99 (ms)"],
        rows=rows,
        notes="degraded reads reconstruct chunks from k stripe blocks on the fly",
        raw=raw,
    )


def ext_grouped_query(num_queries: int = 30) -> ExperimentResult:
    """Extension bench: the paper's Q4 exactly as written (GROUP BY date)."""
    from repro.workloads.queries import q4_grouped_sql

    tdata, ttable = dataset("taxi")
    cfg = store_config("taxi")
    fusion, baseline = build_pair({"taxi": tdata}, store_config=cfg)
    sql = q4_grouped_sql()
    expected = execute_local(sql, ttable)  # FROM name is not schema-checked locally
    f = run_workload(fusion, [sql], num_clients=10, num_queries=num_queries)
    b = run_workload(baseline, [sql], num_clients=10, num_queries=num_queries)
    comp = Comparison(label="Q4-grouped", fusion=f, baseline=b)
    rows = [
        ["fusion", round(f.p50() * 1000, 1), round(f.p99() * 1000, 1)],
        ["baseline", round(b.p50() * 1000, 1), round(b.p99() * 1000, 1)],
        ["reduction (%)", round(comp.p50_reduction, 1), round(comp.p99_reduction, 1)],
    ]
    return ExperimentResult(
        experiment="ext-grouped-query",
        title="Q4 with GROUP BY date (average fare per day)",
        headers=["system", "p50 (ms)", "p99 (ms)"],
        rows=rows,
        notes=f"groups returned: {expected.rows.num_rows}",
        raw={"comparison": comp, "groups": expected.rows.num_rows},
    )



def ablation_page_skipping(num_queries: int = 30) -> ExperimentResult:
    """Node-local page skipping on vs off, on a page-prunable filter.

    ``l_orderkey`` is sorted, so within a chunk most pages cannot match a
    narrow range filter; page stats let the node decode only the
    candidate pages.
    """
    data, _table = dataset("lineitem")
    sql = _micro_sql(0, 0.05)
    rows = []
    raw: dict = {}
    for label, enabled in (("page skipping on", True), ("page skipping off", False)):
        cfg = store_config("lineitem", enable_page_skipping=enabled)
        system = build_system("fusion", {"lineitem": data}, store_config=cfg)
        stats = run_workload(system, [sql], num_clients=10, num_queries=num_queries)
        raw[enabled] = stats
        rows.append([label, round(stats.p50() * 1000, 1), round(stats.p99() * 1000, 1)])
    return ExperimentResult(
        experiment="ablation-page-skipping",
        title="Node-local page skipping (sorted-column range filter, ms)",
        headers=["mode", "p50 (ms)", "p99 (ms)"],
        rows=rows,
        notes="stats are conservative: results identical, decode cost drops",
        raw=raw,
    )


def ablation_rpc_batching(num_queries: int = 30) -> ExperimentResult:
    """Scatter-gather RPC batching on vs off, for both stores.

    Batching coalesces each stage's per-chunk ops into one batched
    request per destination node (replies stream per-op), amortising the
    fixed RPC overhead and RTT; payload bytes and results are identical.
    """
    ldata, ltable = dataset("lineitem")
    tdata, ttable = dataset("taxi")
    queries = {q.name: q for q in real_world_queries(ltable, ttable)}
    sqls = [queries["Q1"].sql, queries["Q3"].sql]
    rows = []
    raw: dict = {}
    for kind in ("fusion", "baseline"):
        for enabled in (True, False):
            cfg = store_config("lineitem", enable_rpc_batching=enabled)
            system = build_system(
                kind, {"lineitem": ldata, "taxi": tdata}, store_config=cfg
            )
            stats = run_workload(system, sqls, num_clients=10, num_queries=num_queries)
            raw[(kind, enabled)] = stats
            rows.append(
                [
                    kind,
                    "batched" if enabled else "unbatched",
                    round(stats.mean_latency() * 1000, 2),
                    round(stats.p99() * 1000, 2),
                    stats.rpcs_issued,
                    stats.rpcs_saved,
                    round(stats.network_bytes / MB, 1),
                ]
            )
    return ExperimentResult(
        experiment="ablation-rpc-batching",
        title="Per-node scatter-gather RPC batching (Q1 + Q3, ms)",
        headers=[
            "system",
            "mode",
            "mean (ms)",
            "p99 (ms)",
            "rpcs issued",
            "rpcs saved",
            "net MB",
        ],
        rows=rows,
        notes="one batched request per (node, stage); traffic and results identical",
        raw=raw,
    )


def put_latency(datasets_to_run: tuple[str, ...] = ("lineitem", "taxi")) -> ExperimentResult:
    """Put latency: Fusion (FAC) vs baseline (fixed blocks).

    The paper reports ~34 s to upload an 11 GB file; the claim to preserve
    is that FAC adds negligible Put cost over fixed-block striping.
    """
    rows = []
    raw: dict = {}
    for name in datasets_to_run:
        data, _table = dataset(name)
        cfg = store_config(name)
        fusion = build_system("fusion", {}, store_config=cfg)
        baseline = build_system("baseline", {}, store_config=cfg)
        f_report = fusion.store.put(name, data)
        b_report = baseline.store.put(name, data)
        raw[name] = (f_report, b_report)
        rows.append(
            [
                name,
                round(f_report.simulated_put_seconds, 2),
                round(b_report.simulated_put_seconds, 2),
                f"{f_report.layout_build_seconds * 1e6:.0f} us",
                f_report.strategy,
            ]
        )
    return ExperimentResult(
        experiment="put-latency",
        title="Put latency (simulated seconds)",
        headers=["dataset", "fusion put (s)", "baseline put (s)", "FAC runtime", "strategy"],
        rows=rows,
        notes="paper: 34 s for an 11 GB upload; FAC itself costs microseconds",
        raw=raw,
    )


def recovery_time() -> ExperimentResult:
    """Node-recovery duration: Fusion vs baseline (same RS repair math)."""
    rows = []
    raw: dict = {}
    data, _table = dataset("lineitem")
    for kind in ("fusion", "baseline"):
        system = build_system(kind, {"lineitem": data}, store_config=store_config("lineitem"))
        victim = next(n.node_id for n in system.cluster.nodes if n.stored_bytes)
        for bid in list(system.cluster.node(victim)._blocks):
            system.cluster.node(victim).drop_block(bid)
        start = system.sim.now
        rebuilt = system.store.recover_node(victim)
        elapsed = system.sim.now - start
        raw[kind] = (rebuilt, elapsed)
        rows.append([kind, rebuilt, round(elapsed, 2)])
    return ExperimentResult(
        experiment="recovery-time",
        title="Single-node recovery (simulated seconds)",
        headers=["system", "blocks rebuilt", "recovery time (s)"],
        rows=rows,
        notes="Fusion uses conventional RS repair (paper Section 5): k reads "
        "plus a decode per lost block",
        raw=raw,
    )


def mixed_workload(num_queries: int = 60) -> ExperimentResult:
    """All four real-world queries interleaved over two objects at once.

    Stresses what the per-query figures cannot: coordinator spread across
    objects and cross-query resource contention.
    """
    fusion, baseline = _realworld_pair()
    _l, ltable = dataset("lineitem")
    _t, ttable = dataset("taxi")
    sqls = [q.sql for q in real_world_queries(ltable, ttable)]
    f = run_workload(fusion, sqls, num_clients=10, num_queries=num_queries)
    b = run_workload(baseline, sqls, num_clients=10, num_queries=num_queries)
    comp = Comparison(label="mixed", fusion=f, baseline=b)
    rows = [
        ["fusion", round(f.p50() * 1000, 1), round(f.p99() * 1000, 1), round(f.network_bytes / 1e9, 1)],
        ["baseline", round(b.p50() * 1000, 1), round(b.p99() * 1000, 1), round(b.network_bytes / 1e9, 1)],
        ["reduction / ratio", round(comp.p50_reduction, 1), round(comp.p99_reduction, 1), round(comp.traffic_ratio, 1)],
    ]
    return ExperimentResult(
        experiment="mixed-workload",
        title="Interleaved Q1-Q4 over lineitem + taxi (10 clients)",
        headers=["system", "p50 (ms)", "p99 (ms)", "network GB"],
        rows=rows,
        raw={"comparison": comp},
    )


def chaos_fault_tolerance(num_queries: int = 30) -> ExperimentResult:
    """Mid-workload node crash, degraded service, then background repair.

    For each store: run the interleaved Q1+Q3 workload fault-free to
    calibrate, then re-run it on a fresh system with a scripted
    :class:`FaultInjector` crashing a data-holding node ~30% in.  Every
    query must still complete (availability 1.0, answered by retries and
    degraded reads); afterwards the :class:`RepairManager` rebuilds the
    dead node's blocks onto live nodes and the object must scrub clean.
    """
    _ldata, ltable = dataset("lineitem")
    _tdata, ttable = dataset("taxi")
    queries = {q.name: q for q in real_world_queries(ltable, ttable)}
    sqls = [queries["Q1"].sql, queries["Q3"].sql]

    def build(kind):
        ldata, _lt = dataset("lineitem")
        tdata, _tt = dataset("taxi")
        cfg = StoreConfig(size_scale=dataset_scale("lineitem"))
        return build_system(kind, {"lineitem": ldata, "taxi": tdata}, store_config=cfg)

    rows = []
    raw: dict = {}
    for kind in ("fusion", "baseline"):
        calibrate = run_workload(build(kind), sqls, num_clients=10, num_queries=num_queries)

        system = build(kind)
        victim = next(n.node_id for n in system.cluster.nodes if n.stored_bytes)
        crash_at = system.sim.now + 0.3 * calibrate.wall_seconds
        FaultInjector(
            system.cluster,
            [FaultEvent(at=crash_at, kind="crash", node_id=victim)],
            seed=7,
        ).install()
        faulted = run_workload(system, sqls, num_clients=10, num_queries=num_queries)
        availability = len(faulted.metrics) / num_queries
        degraded = sum(qm.degraded_reads for qm in faulted.metrics)
        retries = sum(qm.retries for qm in faulted.metrics)

        report = RepairManager(system.store).repair_node(victim)
        clean = all(
            system.store.verify_object(name).clean for name in ("lineitem", "taxi")
        )
        raw[kind] = {
            "calibrate": calibrate,
            "faulted": faulted,
            "repair": report,
            "scrub_clean": clean,
        }
        rows.append(
            [
                kind,
                f"{len(faulted.metrics)}/{num_queries}",
                round(reduction_pct_neg(calibrate.p99(), faulted.p99()), 1),
                degraded,
                retries,
                report.blocks_repaired,
                round(report.time_to_repair, 2),
                "yes" if clean else "NO",
            ]
        )
    return ExperimentResult(
        experiment="chaos",
        title="Mid-workload node crash + repair (Q1+Q3, 10 clients)",
        headers=[
            "system",
            "completed",
            "p99 penalty (%)",
            "degraded reads",
            "retries",
            "blocks repaired",
            "repair time (s)",
            "scrub clean",
        ],
        rows=rows,
        notes="availability must stay 1.0: every query answered via retry or "
        "degraded read; repair traffic is accounted outside query totals",
        raw=raw,
    )


def metadata_chaos(rounds: int = 10, seed: int = 11) -> ExperimentResult:
    """Seeded random Put/Delete interleavings with WAL crash points.

    Each round builds a fresh cluster, runs a seeded random sequence of
    Puts and Deletes, and kills the coordinator at a randomly chosen WAL
    crash point partway through.  Recovery then replays the log, fsck
    must come back clean, and every surviving object must Get
    byte-identical data.  Reported per store: crash/recovery counts,
    mean recovery wall time, orphan blocks/bytes garbage-collected, and
    whether every round ended consistent.
    """
    import random as _random

    data, _table = lineitem_file(num_rows=600, row_group_rows=150)

    def build(kind):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(num_nodes=9))
        FaultInjector(cluster, [], seed=seed).install()
        cls = FusionStore if kind == "fusion" else BaselineStore
        cfg = StoreConfig(
            size_scale=100.0, storage_overhead_threshold=0.1, block_size=500_000
        )
        return cls(cluster, cfg)

    rows = []
    raw: dict = {}
    for kind in ("fusion", "baseline"):
        crashes = 0
        clean_rounds = 0
        gets_ok = True
        lost = 0
        recovery_s: list[float] = []
        gc_blocks = 0
        gc_bytes = 0
        for r in range(rounds):
            rng = _random.Random(seed * 1000 + r)
            store = build(kind)
            cluster = store.cluster
            live: dict[str, bytes] = {}
            n_ops = rng.randint(3, 6)
            crash_op = rng.randrange(n_ops)
            counter = 0
            for op_idx in range(n_ops):
                do_delete = bool(live) and rng.random() < 0.4
                if op_idx == crash_op:
                    points = DELETE_CRASH_POINTS if do_delete else PUT_CRASH_POINTS
                    cluster.faults.arm_crash_point(rng.choice(points))
                try:
                    if do_delete:
                        name = rng.choice(sorted(live))
                        store.delete(name)
                        del live[name]
                    else:
                        name = f"obj-{r}-{counter}"
                        counter += 1
                        store.put(name, data)
                        live[name] = data
                except CoordinatorCrash:
                    crashes += 1
                    if do_delete:
                        live.pop(name, None)  # a logged delete is durable
                    break
            recovery = store.recover()
            report = store.fsck()
            recovery_s.append(recovery.wall_seconds)
            gc_blocks += recovery.orphan_blocks_gcd
            gc_bytes += recovery.orphan_bytes_gcd
            lost += len(recovery.lost_objects)
            live.update({n: data for n in recovery.rolled_forward})
            for n in recovery.rolled_back:
                live.pop(n, None)
            if report.clean:
                clean_rounds += 1
            for name, expect in live.items():
                if bytes(store.get(name)) != expect:
                    gets_ok = False
        mean_recovery_ms = (
            sum(recovery_s) / len(recovery_s) * 1000.0 if recovery_s else 0.0
        )
        raw[kind] = {
            "rounds": rounds,
            "crashes": crashes,
            "clean_rounds": clean_rounds,
            "gets_identical": gets_ok,
            "lost_objects": lost,
            "mean_recovery_ms": mean_recovery_ms,
            "orphan_blocks_gcd": gc_blocks,
            "orphan_bytes_gcd": gc_bytes,
        }
        rows.append(
            [
                kind,
                f"{crashes}/{rounds}",
                f"{clean_rounds}/{rounds}",
                "yes" if gets_ok else "NO",
                lost,
                round(mean_recovery_ms, 2),
                gc_blocks,
                gc_bytes,
            ]
        )
    return ExperimentResult(
        experiment="metadata-chaos",
        title="Random Put/Delete with coordinator crashes at WAL points",
        headers=[
            "system",
            "crashed rounds",
            "fsck clean",
            "gets identical",
            "lost objects",
            "mean recovery (ms)",
            "orphan blocks GC'd",
            "orphan bytes GC'd",
        ],
        rows=rows,
        notes="every round must end fsck-clean with zero lost objects; "
        "recovery rolls committed puts forward and uncommitted work back",
        raw=raw,
    )


def membership_chaos(num_queries: int = 30, seed: int = 13) -> ExperimentResult:
    """Mid-workload node join + drain with background rebalance.

    For each store: calibrate the interleaved Q1+Q3 workload fault-free
    (with membership on), then re-run it on a fresh system whose
    :class:`FaultInjector` joins a new node ~25% in and drains a
    data-holding node ~45% in, while a background driver process runs
    :class:`~repro.core.rebalance.Rebalancer` passes until placement
    converges.  Every query must complete, placement must end
    ring-correct with the drained node empty (then removable), fsck must
    come back clean, and rebalance traffic must be accounted separately
    from both query and repair traffic.
    """
    from repro.core.fsck import fsck as run_fsck
    from repro.core.rebalance import Rebalancer

    _ldata, ltable = dataset("lineitem")
    _tdata, ttable = dataset("taxi")
    queries = {q.name: q for q in real_world_queries(ltable, ttable)}
    sqls = [queries["Q1"].sql, queries["Q3"].sql]

    def build(kind):
        ldata, _lt = dataset("lineitem")
        tdata, _tt = dataset("taxi")
        cfg = StoreConfig(
            size_scale=dataset_scale("lineitem"), membership_enabled=True
        )
        return build_system(kind, {"lineitem": ldata, "taxi": tdata}, store_config=cfg)

    rows = []
    raw: dict = {}
    for kind in ("fusion", "baseline"):
        calibrate = run_workload(build(kind), sqls, num_clients=10, num_queries=num_queries)

        system = build(kind)
        cluster = system.cluster
        victim = next(n.node_id for n in cluster.nodes if n.stored_bytes)
        join_at = system.sim.now + 0.25 * calibrate.wall_seconds
        drain_at = system.sim.now + 0.45 * calibrate.wall_seconds
        FaultInjector(
            cluster,
            [
                FaultEvent(at=join_at, kind="join", node_id=-1),
                FaultEvent(at=drain_at, kind="drain", node_id=victim),
            ],
            seed=seed,
        ).install()

        rb = Rebalancer(system.store)
        churn_end = drain_at + 0.1 * calibrate.wall_seconds
        interval = max(calibrate.wall_seconds / 20.0, 1e-3)

        def driver():
            # Ride along with the workload, sweeping after each epoch
            # bump; then finish the convergence after churn has ended.
            while system.sim.now < churn_end:
                yield system.sim.timeout(interval)
                if rb.misplaced() or cluster.migrations:
                    yield from rb.rebalance_process()
            for _ in range(50):  # bounded: one pass normally suffices
                if rb.converged():
                    break
                yield from rb.rebalance_process()
                yield system.sim.timeout(interval)

        system.sim.process(driver())
        faulted = run_workload(system, sqls, num_clients=10, num_queries=num_queries)
        converge_s = max(0.0, system.sim.now - drain_at)

        converged = rb.converged()
        drained_empty = not any(cluster.node(victim).block_ids())
        if drained_empty and converged:
            cluster.remove_node(victim)
        fsck_report = run_fsck(system.store)
        metrics = cluster.metrics
        raw[kind] = {
            "calibrate": calibrate,
            "faulted": faulted,
            "converged": converged,
            "drained_empty": drained_empty,
            "fsck_clean": fsck_report.clean,
            "rebalance_bytes": metrics.rebalance_bytes,
            "blocks_migrated": metrics.blocks_migrated,
            "repair_bytes": metrics.repair_bytes,
            "convergence_s": converge_s,
        }
        rows.append(
            [
                kind,
                f"{len(faulted.metrics)}/{num_queries}",
                round(reduction_pct_neg(calibrate.p99(), faulted.p99()), 1),
                metrics.blocks_migrated,
                metrics.rebalance_bytes,
                metrics.repair_bytes,
                round(converge_s, 2),
                "yes" if converged else "NO",
                "clean" if fsck_report.clean else fsck_report.summary(),
            ]
        )
    return ExperimentResult(
        experiment="membership-chaos",
        title="Mid-workload join + drain with background rebalance (Q1+Q3)",
        headers=[
            "system",
            "completed",
            "p99 penalty (%)",
            "blocks migrated",
            "rebalance bytes",
            "repair bytes",
            "convergence (s)",
            "ring-converged",
            "fsck",
        ],
        rows=rows,
        notes="every query must complete; placement must converge to the ring "
        "with the drained node emptied and removed; rebalance traffic is "
        "accounted separately from query and repair traffic",
        raw=raw,
    )


def reduction_pct_neg(before: float, after: float) -> float:
    """Latency *increase* of ``after`` over ``before`` (%): the penalty."""
    if before == 0:
        return 0.0
    return (after - before) / before * 100.0


def _max_queue_depth(cluster) -> int:
    """Deepest admission queue across every node service loop right now."""
    depth = 0
    for node in cluster.nodes:
        for resource in (
            node.cpu,
            node.disk.device,
            node.endpoint.egress,
            node.endpoint.ingress,
        ):
            depth = max(depth, resource.queue_length)
    return depth


def _overload_storm(system, sqls, rate_qps: float, duration_s: float) -> dict:
    """Open-loop arrivals at ``rate_qps`` for ``duration_s``, each query
    catching the typed protection failures (anything else would escape
    ``sim.run`` — an *uncontrolled* failure that aborts the experiment).

    Returns arrival records ``(arrival_time, latency, outcome)`` with
    outcome in {"ok", "partial", "controlled"}, plus sampled queue
    depths over the arrival window.
    """
    from repro.cluster.metrics import QueryMetrics
    from repro.cluster.overload import DeadlineExceeded, PartialResult
    from repro.cluster.simcore import QueueFull
    from repro.core.scatter_gather import RemoteOpError

    sim = system.sim
    store = system.store
    start = sim.now
    records: list[tuple[float, float, str]] = []
    depth_samples: list[tuple[float, int]] = []

    def one_query(sql: str, arrival: float):
        qm = QueryMetrics()
        try:
            result = yield from store.query_process(sql, qm)
        except (DeadlineExceeded, QueueFull, RemoteOpError):
            records.append((arrival, sim.now - arrival, "controlled"))
        else:
            outcome = "partial" if isinstance(result, PartialResult) else "ok"
            records.append((arrival, sim.now - arrival, outcome))

    def arrival_generator():
        interval = 1.0 / rate_qps
        for i in range(int(rate_qps * duration_s)):
            sim.process(one_query(sqls[i % len(sqls)], sim.now))
            yield sim.timeout(interval)

    def monitor():
        step = duration_s / 50.0
        while sim.now - start < duration_s:
            depth_samples.append((sim.now - start, _max_queue_depth(system.cluster)))
            yield sim.timeout(step)

    sim.process(arrival_generator())
    sim.process(monitor())
    sim.run()

    quarters: list[list[float]] = [[], [], [], []]
    for arrival, latency, _outcome in records:
        q = min(3, int(4 * (arrival - start) / duration_s))
        quarters[q].append(latency)
    counts = {
        key: sum(1 for r in records if r[2] == key)
        for key in ("ok", "partial", "controlled")
    }
    return {
        "records": records,
        "counts": counts,
        "quarter_p99": [percentile(q, 99) if q else 0.0 for q in quarters],
        "depth_samples": depth_samples,
        "max_depth": max((d for _t, d in depth_samples), default=0),
        "duration_s": duration_s,
        "drained_s": sim.now - start,
    }


def overload_protection(
    calibration_queries: int = 40,
    overload_factor: float = 2.5,
    arrivals: int = 120,
) -> ExperimentResult:
    """Closed-loop capacity calibration, then a sustained open-loop storm
    at ``overload_factor`` x capacity — protection off vs on.

    Off (the seed behaviour): nothing fails, but queues and p99 grow
    without bound for as long as the storm lasts.  On (deadline 10x the
    uncontended p99, bounded admission queues, breakers, partial
    results, retry jitter): every refusal is a *typed* failure, queue
    depth stays bounded by the admission knob, successes stay within the
    deadline, and goodput holds at >= 70% of the calibrated capacity.
    """
    _ldata, ltable = dataset("lineitem")
    _tdata, ttable = dataset("taxi")
    queries = {q.name: q for q in real_world_queries(ltable, ttable)}
    sqls = [queries["Q1"].sql, queries["Q3"].sql]

    def build(kind, **overrides):
        ldata, _lt = dataset("lineitem")
        tdata, _tt = dataset("taxi")
        cfg = StoreConfig(size_scale=dataset_scale("lineitem"), **overrides)
        return build_system(kind, {"lineitem": ldata, "taxi": tdata}, store_config=cfg)

    rows = []
    raw: dict = {}
    for kind in ("fusion", "baseline"):
        calibrate = run_workload(
            build(kind), sqls, num_clients=10, num_queries=calibration_queries
        )
        capacity_qps = len(calibrate.metrics) / calibrate.wall_seconds
        uncontended_p99 = calibrate.p99()
        rate = overload_factor * capacity_qps
        duration = arrivals / rate
        deadline = 10.0 * uncontended_p99

        off = _overload_storm(build(kind), sqls, rate, duration)
        protected = build(
            kind,
            admission_queue_depth=16,
            admission_policy="reject",
            breaker_failure_threshold=50,
            breaker_window_s=deadline,
            breaker_reset_s=deadline / 2.0,
            allow_partial_results=True,
            rpc_retry_jitter=0.5,
        )
        # Arm the query deadline only after the (much longer) data load.
        protected.store.config.default_deadline_s = deadline
        on = _overload_storm(protected, sqls, rate, duration)

        answered = on["counts"]["ok"] + on["counts"]["partial"]
        goodput_frac = (answered / duration) / capacity_qps
        on_p99 = percentile(
            [lat for _a, lat, out in on["records"] if out != "controlled"], 99
        )
        raw[kind] = {
            "capacity_qps": capacity_qps,
            "uncontended_p99": uncontended_p99,
            "deadline_s": deadline,
            "rate_qps": rate,
            "off": off,
            "on": on,
            "goodput_frac": goodput_frac,
            "on_p99": on_p99,
        }
        for mode, run in (("off", off), ("on", on)):
            c = run["counts"]
            rows.append(
                [
                    kind,
                    mode,
                    c["ok"],
                    c["partial"],
                    c["controlled"],
                    round((c["ok"] + c["partial"]) / duration / capacity_qps, 2),
                    [round(p * 1e3, 1) for p in run["quarter_p99"]],
                    run["max_depth"],
                ]
            )
    return ExperimentResult(
        experiment="overload",
        title=f"Open-loop storm at {overload_factor}x capacity: protection off vs on",
        headers=[
            "system",
            "protection",
            "ok",
            "partial",
            "typed failures",
            "goodput/capacity",
            "p99 by quarter (ms)",
            "max queue depth",
        ],
        rows=rows,
        notes="off: p99 grows quarter over quarter and queues are unbounded; "
        "on: failures are typed only, depth <= admission knob, successes "
        "within the deadline, goodput >= 0.7x capacity",
        raw=raw,
    )


def fig16a_wide_code(
    chunk_counts: tuple[int, ...] = (50, 100, 500, 1000),
    runs: int = 15,
) -> ExperimentResult:
    """The RS(14,10) variant of Fig 16a the paper omits for space."""
    rows = []
    raw: dict = {}
    for params in (RS_9_6, RS_14_10):
        for n in chunk_counts:
            overheads = []
            for r in range(runs):
                sizes = zipf_chunk_sizes(n, 0.5, seed=500 * r + n)
                layout = construct_stripes(params, items_from_sizes(sizes))
                overheads.append(layout.overhead_vs_optimal * 100)
            avg = sum(overheads) / len(overheads)
            raw[(str(params), n)] = avg
            rows.append([str(params), n, round(avg, 2)])
    return ExperimentResult(
        experiment="fig16a-wide",
        title="FAC storage overhead, RS(9,6) vs RS(14,10) (zipf 0.5, %)",
        headers=["code", "chunks", "overhead (%)"],
        rows=rows,
        notes="paper: RS(14,10) exhibits a similar pattern (omitted there)",
        raw=raw,
    )


def _qos_storm(
    system,
    sqls,
    duration_s: float,
    open_loop: dict[str, float] | None = None,
    closed_loop: dict[str, int] | None = None,
) -> dict:
    """Drive a multi-tenant mixed workload for ``duration_s``.

    ``open_loop`` maps tenant -> arrival rate (qps): queries arrive on a
    fixed clock regardless of completions (the storm shape).
    ``closed_loop`` maps tenant -> client count: each client issues its
    next query only after the previous one finishes (a well-behaved
    tenant staying within its share).

    Every refusal must be one of the typed protection failures
    (``QuotaExceeded``, ``DeadlineExceeded``, ``QueueFull``,
    ``RemoteOpError``) — anything else escapes ``sim.run`` and aborts
    the experiment as an *uncontrolled* failure.  Returns per-tenant
    issued/ok/controlled counts, goodput, and p99 over successes.
    """
    from repro.cluster.metrics import QueryMetrics
    from repro.cluster.overload import DeadlineExceeded, PartialResult
    from repro.cluster.qos import QuotaExceeded
    from repro.cluster.simcore import QueueFull
    from repro.core.scatter_gather import RemoteOpError

    open_loop = open_loop or {}
    closed_loop = closed_loop or {}
    sim = system.sim
    store = system.store
    start = sim.now
    records: dict[str, list[tuple[float, float, str]]] = {
        tenant: [] for tenant in (*open_loop, *closed_loop)
    }

    def one_query(sql: str, tenant: str, arrival: float):
        qm = QueryMetrics()
        try:
            result = yield from store.query_process(sql, qm, tenant=tenant)
        except (QuotaExceeded, DeadlineExceeded, QueueFull, RemoteOpError):
            records[tenant].append((arrival, sim.now - arrival, "controlled"))
        else:
            outcome = "partial" if isinstance(result, PartialResult) else "ok"
            records[tenant].append((arrival, sim.now - arrival, outcome))

    def storm_arrivals(tenant: str, rate_qps: float):
        interval = 1.0 / rate_qps
        for i in range(int(rate_qps * duration_s)):
            sim.process(one_query(sqls[i % len(sqls)], tenant, sim.now))
            yield sim.timeout(interval)

    def paced_client(tenant: str, cid: int):
        qi = 0
        while sim.now - start < duration_s:
            yield from one_query(sqls[(cid + qi) % len(sqls)], tenant, sim.now)
            qi += 1

    for tenant, rate in open_loop.items():
        sim.process(storm_arrivals(tenant, rate))
    for tenant, clients in closed_loop.items():
        for cid in range(clients):
            sim.process(paced_client(tenant, cid))
    sim.run()

    out: dict = {"duration_s": duration_s, "drained_s": sim.now - start}
    for tenant, recs in records.items():
        oks = [lat for _a, lat, outcome in recs if outcome != "controlled"]
        out[tenant] = {
            "issued": len(recs),
            "ok": len(oks),
            "controlled": len(recs) - len(oks),
            "p99": percentile(oks, 99) if oks else 0.0,
            "goodput_qps": len(oks) / duration_s,
        }
    return out


def tenant_qos(
    calibration_queries: int = 40,
    storm_factor: float = 2.5,
    arrivals: int = 100,
    victim_clients: int = 4,
) -> ExperimentResult:
    """Noisy-neighbour isolation under the per-tenant QoS layer.

    Calibrates closed-loop capacity per system, then runs three
    QoS-enabled scenarios: tenant B alone (the isolated yardstick),
    tenant A storming open-loop at ``storm_factor`` x capacity while B
    stays closed-loop within its share, and a symmetric pair of
    equal-weight closed-loop tenants.

    Acceptance (enforced by ``benchmarks/qos_bench.py``): in the storm,
    B's p99 stays under the deadline and its goodput holds at >= 80% of
    the isolated run while A absorbs *all* typed refusals; the symmetric
    tenants' goodputs agree within 10%.
    """
    _ldata, ltable = dataset("lineitem")
    _tdata, ttable = dataset("taxi")
    queries = {q.name: q for q in real_world_queries(ltable, ttable)}
    sqls = [queries["Q1"].sql, queries["Q3"].sql]

    def build(kind, **overrides):
        ldata, _lt = dataset("lineitem")
        tdata, _tt = dataset("taxi")
        cfg = StoreConfig(size_scale=dataset_scale("lineitem"), **overrides)
        return build_system(kind, {"lineitem": ldata, "taxi": tdata}, store_config=cfg)

    rows = []
    raw: dict = {}
    for kind in ("fusion", "baseline"):
        calibrate = run_workload(
            build(kind), sqls, num_clients=10, num_queries=calibration_queries
        )
        capacity_qps = len(calibrate.metrics) / calibrate.wall_seconds
        uncontended_p99 = calibrate.p99()
        deadline = 10.0 * uncontended_p99
        storm_rate = storm_factor * capacity_qps
        duration = arrivals / storm_rate

        def qos_build(**extra):
            base = dict(
                qos_enabled=True,
                tenant_weights={"A": 1.0, "B": 1.0},
                admission_queue_depth=16,
                admission_policy="reject",
                tenant_queue_depth=16,
                rpc_retry_jitter=0.5,
            )
            base.update(extra)
            system = build(kind, **base)
            # Arm the query deadline only after the (much longer) data load.
            system.store.config.default_deadline_s = deadline
            return system

        # The operator's policy for the storm scenarios: A is a bulk
        # tenant capped by quota at 20% of calibrated capacity (the
        # 2.5x storm is mostly refused at the door — cheaply, before it
        # can occupy queue slots B needs) and B carries 4x A's DRR
        # weight, so B's isolated-run goodput survives the storm.
        policy = dict(
            tenant_requests_per_s={"A": 0.2 * capacity_qps},
            tenant_weights={"A": 1.0, "B": 4.0},
        )
        isolated = _qos_storm(
            qos_build(**policy),
            sqls,
            duration,
            closed_loop={"B": victim_clients},
        )
        storm_sys = qos_build(**policy)
        storm = _qos_storm(
            storm_sys,
            sqls,
            duration,
            open_loop={"A": storm_rate},
            closed_loop={"B": victim_clients},
        )
        symmetric = _qos_storm(
            qos_build(),
            sqls,
            duration,
            closed_loop={"A": victim_clients, "B": victim_clients},
        )
        sym_a = symmetric["A"]["goodput_qps"]
        sym_b = symmetric["B"]["goodput_qps"]
        sym_ratio = min(sym_a, sym_b) / max(sym_a, sym_b) if max(sym_a, sym_b) else 0.0

        raw[kind] = {
            "capacity_qps": capacity_qps,
            "uncontended_p99": uncontended_p99,
            "deadline_s": deadline,
            "storm_rate_qps": storm_rate,
            "isolated": isolated,
            "storm": storm,
            "symmetric": symmetric,
            "symmetric_ratio": sym_ratio,
            "tenants": storm_sys.cluster.metrics.tenants and {
                t: {k: v for k, v in d.items() if k != "latencies"}
                for t, d in storm_sys.cluster.metrics.tenants.items()
            },
            "qos_stats": storm_sys.cluster.qos.stats,
        }
        for scenario, run in (("isolated", isolated), ("storm", storm), ("symmetric", symmetric)):
            for tenant in ("A", "B"):
                if tenant not in run:
                    continue
                t = run[tenant]
                rows.append(
                    [
                        kind,
                        scenario,
                        tenant,
                        t["issued"],
                        t["ok"],
                        t["controlled"],
                        round(t["goodput_qps"], 1),
                        round(t["p99"] * 1e3, 1),
                    ]
                )
    return ExperimentResult(
        experiment="qos",
        title=f"Two-tenant QoS: open-loop storm at {storm_factor}x capacity vs a paced tenant",
        headers=[
            "system",
            "scenario",
            "tenant",
            "issued",
            "ok",
            "typed refusals",
            "goodput (qps)",
            "p99 (ms)",
        ],
        rows=rows,
        notes="storm: B's p99 stays under the deadline and its goodput holds "
        "at >= 0.8x its isolated run; A absorbs every typed refusal; "
        "equal-weight symmetric tenants agree within 10%",
        raw=raw,
    )


#: Registry used by the CLI and the benchmark suite.
ALL_EXPERIMENTS = {
    "table3": table3_datasets,
    "table4": table4_queries,
    "fig4a": fig4a_chunk_splits,
    "fig4b": fig4b_baseline_breakdown,
    "fig4c": fig4c_chunk_cdf,
    "fig4d": fig4d_padding_overhead,
    "fig6": fig6_compression,
    "fig10a": fig10a_oracle_runtime,
    "fig10b": fig10b_tradeoff,
    "fig12": fig12_nodes_per_chunk,
    "fig13ab": fig13ab_column_sweep,
    "fig13cd": fig13cd_breakdown,
    "fig14ab": fig14ab_selectivity_sweep,
    "fig14c": fig14c_bandwidth_sweep,
    "fig14d": fig14d_cpu_utilization,
    "fig15a": fig15a_realworld,
    "fig15b": fig15b_traffic,
    "fig16a": fig16a_fac_overhead,
    "fig16bc": fig16bc_strategy_compare,
    "ablation-cost-model": ablation_cost_model,
    "ablation-contention": ablation_contention,
    "ablation-fac-policy": ablation_fac_policy,
    "ext-aggregate-pushdown": ext_aggregate_pushdown,
    "ext-degraded-reads": ext_degraded_reads,
    "ext-grouped-query": ext_grouped_query,
    "ablation-page-skipping": ablation_page_skipping,
    "put-latency": put_latency,
    "recovery-time": recovery_time,
    "mixed-workload": mixed_workload,
    "fig16a-wide": fig16a_wide_code,
    "chaos": chaos_fault_tolerance,
    "metadata-chaos": metadata_chaos,
    "membership-chaos": membership_chaos,
    "overload": overload_protection,
    "qos": tenant_qos,
}
