"""Plain-text reporting of experiment results in the paper's shape."""

from __future__ import annotations

from typing import Iterable


def format_table(title: str, headers: list[str], rows: Iterable[Iterable[object]]) -> str:
    """Render an aligned text table with a title rule."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(title: str, headers: list[str], rows: Iterable[Iterable[object]]) -> None:
    print(format_table(title, headers, rows))
    print()


def _fmt(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if abs(cell) >= 1000 or (0 < abs(cell) < 0.001):
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".") or "0"
    return str(cell)


def format_bytes(n: float) -> str:
    """Human-readable byte count."""
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024 or unit == "TB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024
    return f"{n:.1f}TB"  # pragma: no cover - unreachable
