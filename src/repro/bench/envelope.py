"""Shared envelope schema for the acceptance benchmarks' BENCH_*.json.

The standalone benchmarks under ``benchmarks/*_bench.py`` each grew
their own report shape; the envelope normalizes the top level so CI and
:mod:`benchmarks.bench_summary` can aggregate them without per-benchmark
knowledge::

    {
      "schema": "bench-envelope/v1",
      "benchmark": "<name>",
      "wall_seconds": <host seconds the benchmark took>,
      "acceptance": {
        "pass": true|false,
        "floors": { "<threshold name>": <value>, ... }
      },
      "detail": { ...the benchmark's own report, unchanged... }
    }

``floors`` documents the named thresholds the pass/fail verdict was
computed against (speedup floors, goodput fractions, overhead caps);
the per-check evidence stays inside ``detail`` in whatever shape the
benchmark always used.

:func:`load_bench_report` also understands pre-envelope files (anything
without the ``schema`` marker) by nesting them under ``detail`` with a
best-effort verdict, so mixed result directories keep aggregating.
"""

from __future__ import annotations

import json

SCHEMA = "bench-envelope/v1"


def bench_report(
    benchmark: str,
    wall_seconds: float,
    passed: bool,
    floors: dict,
    detail: dict,
) -> dict:
    """The envelope document for one benchmark run."""
    return {
        "schema": SCHEMA,
        "benchmark": benchmark,
        "wall_seconds": wall_seconds,
        "acceptance": {"pass": bool(passed), "floors": dict(floors)},
        "detail": detail,
    }


def write_bench_report(
    path: str,
    benchmark: str,
    wall_seconds: float,
    passed: bool,
    floors: dict,
    detail: dict,
) -> dict:
    """Write the envelope as deterministic JSON; returns the document."""
    doc = bench_report(benchmark, wall_seconds, passed, floors, detail)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def _legacy_verdict(doc: dict) -> bool | None:
    """Best-effort pass/fail from a pre-envelope report (None: unknown)."""
    for key in ("ok", "passed"):
        if isinstance(doc.get(key), bool):
            return doc[key]
    acceptance = doc.get("acceptance")
    if isinstance(acceptance, dict):
        if isinstance(acceptance.get("pass"), bool):
            return acceptance["pass"]
        if isinstance(acceptance.get("passes"), bool):
            return acceptance["passes"]
        verdicts = [
            entry["passes"]
            for entry in acceptance.values()
            if isinstance(entry, dict) and isinstance(entry.get("passes"), bool)
        ]
        if verdicts:
            return all(verdicts)
    return None


def load_bench_report(path: str) -> dict:
    """Read one BENCH_*.json, normalized to the envelope shape.

    Envelope files come back as-is; legacy files are wrapped (their
    whole document becomes ``detail``, the verdict is recovered from
    the common legacy markers, ``wall_seconds`` is absent as 0.0).
    """
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if isinstance(doc, dict) and doc.get("schema") == SCHEMA:
        return doc
    verdict = _legacy_verdict(doc) if isinstance(doc, dict) else None
    return {
        "schema": "legacy",
        "benchmark": doc.get("benchmark", "?") if isinstance(doc, dict) else "?",
        "wall_seconds": 0.0,
        "acceptance": {"pass": verdict, "floors": {}},
        "detail": doc,
    }


__all__ = ["SCHEMA", "bench_report", "load_bench_report", "write_bench_report"]
