"""Benchmark harness: per-figure experiments and workload drivers.

Run ``python -m repro.bench <experiment>`` (or ``all``) to print the rows
the paper's tables and figures report; the same functions back the
``benchmarks/`` pytest-benchmark suite.
"""

from repro.bench.experiments import ALL_EXPERIMENTS, ExperimentResult
from repro.bench.harness import (
    PAPER_DATASET_BYTES,
    Comparison,
    SystemUnderTest,
    WorkloadStats,
    build_pair,
    build_system,
    reduction_pct,
    run_open_loop,
    run_workload,
)
from repro.bench.report import format_bytes, format_table, print_table

__all__ = [
    "ALL_EXPERIMENTS",
    "Comparison",
    "ExperimentResult",
    "PAPER_DATASET_BYTES",
    "SystemUnderTest",
    "WorkloadStats",
    "build_pair",
    "build_system",
    "format_bytes",
    "format_table",
    "print_table",
    "reduction_pct",
    "run_open_loop",
    "run_workload",
]
