"""Fusion: an analytics object store optimized for query pushdown.

Reproduction of Lu, Raina, Cidon & Freedman (ASPLOS 2025).

Subpackages:

* :mod:`repro.format` — PAX columnar file format (Parquet-like).
* :mod:`repro.ec` — systematic Reed-Solomon erasure coding over GF(2^8).
* :mod:`repro.cluster` — discrete-event simulated storage cluster.
* :mod:`repro.sql` — SQL subset (SELECT/WHERE + aggregates) engine.
* :mod:`repro.core` — Fusion itself: FAC stripe construction, the
  pushdown cost model, and the Fusion / baseline object stores.
* :mod:`repro.workloads` — dataset generators and paper queries.
* :mod:`repro.bench` — per-figure/table experiment harness.
"""

__version__ = "1.0.0"
